//! Hierarchical wall-clock spans with drop-guard scoping.
//!
//! A [`Span`] is opened with [`span`] (or the `span!` macro) and closed
//! by its `Drop` impl, so the span tree is well-nested even under early
//! returns and panics. Nesting is tracked per thread with a
//! thread-local stack; finished spans are appended to a global
//! collector guarded by a mutex (two `Instant::now()` calls, a counter
//! snapshot, and one short mutex hold per span — spans are placed at
//! phase granularity, never per element).
//!
//! Collection is off until [`begin`] flips a global `AtomicBool`; spans
//! opened while collection is off cost one relaxed load. With the
//! `telemetry` cargo feature off, everything in this module is a no-op
//! and [`Span`] is zero-sized.

use crate::report::RunReport;

/// One finished span, as recorded by the drop guard. Converted into the
/// aggregated [`crate::ReportNode`] tree by [`finish`].
#[derive(Clone, Debug)]
pub(crate) struct RawSpan {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: &'static str,
    pub wall_ns: u64,
    pub counters: crate::CounterSnapshot,
    pub alloc_events: u64,
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::RawSpan;
    use crate::report::RunReport;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    static COLLECTING: AtomicBool = AtomicBool::new(false);
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    static RECORDS: Mutex<Vec<RawSpan>> = Mutex::new(Vec::new());
    #[allow(clippy::type_complexity)]
    static RUN_START: Mutex<Option<(Instant, crate::CounterSnapshot, u64, u64)>> = Mutex::new(None);

    thread_local! {
        static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    fn lock<T>(m: &'static Mutex<T>) -> std::sync::MutexGuard<'static, T> {
        // A panic inside a span body can poison the mutex while the
        // unwinding drop guard still wants to record; the data is plain
        // append-only state, so recover the guard.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub struct Span {
        active: Option<Active>,
    }

    struct Active {
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        start: Instant,
        counters: crate::CounterSnapshot,
        alloc_events: u64,
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(a) = self.active.take() else { return };
            // Guards usually drop LIFO, but a Vec of guards (or an
            // unwind through one) drops FIFO — remove this span's id
            // wherever it sits so the stack still fully unwinds, and
            // never panic here (we may already be unwinding).
            STACK.with(|s| {
                let mut s = s.borrow_mut();
                if let Some(pos) = s.iter().rposition(|&x| x == a.id) {
                    s.remove(pos);
                }
            });
            // finish() may have raced us; a record landing after the
            // final drain would leak into the *next* run, so re-check.
            if !COLLECTING.load(Ordering::Relaxed) {
                return;
            }
            let wall_ns = a.start.elapsed().as_nanos() as u64;
            let counters = crate::snapshot().delta(&a.counters);
            let alloc_events = crate::alloc::events().saturating_sub(a.alloc_events);
            lock(&RECORDS).push(RawSpan {
                id: a.id,
                parent: a.parent,
                name: a.name,
                wall_ns,
                counters,
                alloc_events,
            });
        }
    }

    #[inline]
    pub fn span(name: &'static str) -> Span {
        if !COLLECTING.load(Ordering::Relaxed) {
            return Span { active: None };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        Span {
            active: Some(Active {
                id,
                parent,
                name,
                start: Instant::now(),
                counters: crate::snapshot(),
                alloc_events: crate::alloc::events(),
            }),
        }
    }

    pub fn begin() {
        lock(&RECORDS).clear();
        crate::alloc::reset_peak();
        *lock(&RUN_START) = Some((
            Instant::now(),
            crate::snapshot(),
            crate::alloc::events(),
            crate::alloc::live_bytes(),
        ));
        COLLECTING.store(true, Ordering::Relaxed);
    }

    pub fn finish() -> RunReport {
        COLLECTING.store(false, Ordering::Relaxed);
        let records = std::mem::take(&mut *lock(&RECORDS));
        let start = lock(&RUN_START).take();
        let (wall_ns, counters, alloc_events, live_before) = match start {
            Some((t, snap, ev, live)) => (
                t.elapsed().as_nanos() as u64,
                crate::snapshot().delta(&snap),
                crate::alloc::events().saturating_sub(ev),
                live,
            ),
            None => (0, crate::CounterSnapshot::default(), 0, 0),
        };
        let alloc_peak = crate::alloc::peak_bytes().saturating_sub(live_before);
        RunReport::build(records, wall_ns, counters, alloc_events, alloc_peak)
    }

    #[inline]
    pub fn collecting() -> bool {
        COLLECTING.load(Ordering::Relaxed)
    }

    pub fn span_depth() -> usize {
        STACK.with(|s| s.borrow().len())
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use crate::report::RunReport;

    /// Zero-sized inert span guard (feature off). The empty `Drop` impl
    /// keeps explicit `drop(span)` scope-bracketing at call sites
    /// meaningful (and clippy-clean) in both feature modes.
    pub struct Span {
        _priv: (),
    }

    impl Drop for Span {
        #[inline(always)]
        fn drop(&mut self) {}
    }

    #[inline(always)]
    pub fn span(name: &'static str) -> Span {
        let _ = name;
        Span { _priv: () }
    }

    #[inline(always)]
    pub fn begin() {}

    #[inline(always)]
    pub fn finish() -> RunReport {
        RunReport::empty()
    }

    #[inline(always)]
    pub fn collecting() -> bool {
        false
    }

    #[inline(always)]
    pub fn span_depth() -> usize {
        0
    }
}

/// Drop guard for one span. Hold it for the duration of the phase:
/// `let _span = telemetry::span("limbo.phase1");`
pub use imp::Span;

/// Open a span named `name`. `name` must be a static phase label
/// following the `crate.phase` convention (see DESIGN.md); dynamic
/// strings are deliberately unsupported to keep the guard allocation
/// free. Costs one relaxed load when collection is off; a true no-op
/// when the `telemetry` feature is off.
#[inline(always)]
pub fn span(name: &'static str) -> Span {
    imp::span(name)
}

/// Start collecting spans: clears previously collected records, resets
/// the allocation peak watermark, and snapshots counters so the final
/// [`RunReport`] reports window deltas. No-op when the feature is off.
#[inline(always)]
pub fn begin() {
    imp::begin()
}

/// Stop collecting and return the aggregated [`RunReport`] for the
/// window since [`begin`]. Returns an empty report when the feature is
/// off or `begin` was never called.
#[inline(always)]
pub fn finish() -> RunReport {
    imp::finish()
}

/// True while a [`begin`]..[`finish`] window is open (always false when
/// the feature is off).
#[inline(always)]
pub fn collecting() -> bool {
    imp::collecting()
}

/// Depth of the current thread's open-span stack — a test hook for the
/// well-nestedness proptests. Always 0 when the feature is off.
#[inline(always)]
pub fn span_depth() -> usize {
    imp::span_depth()
}
