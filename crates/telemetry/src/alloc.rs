//! Counting global allocator, promoted out of `bench_limbo`'s private
//! copy so both bench runners and the CLI `--profile` path share one
//! implementation: total allocation events (`alloc` + `realloc`) and
//! peak live bytes over the system allocator.
//!
//! This module is deliberately **feature-independent**: it has zero
//! cost unless a binary opts in by installing the allocator, so there
//! is nothing to gate. Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOCATOR: dbmine_telemetry::alloc::CountingAlloc =
//!     dbmine_telemetry::alloc::CountingAlloc;
//!
//! fn main() {
//!     dbmine_telemetry::alloc::mark_installed();
//!     // ...
//! }
//! ```
//!
//! Without installation every query function returns 0 and
//! [`RunReport::alloc_installed`](crate::RunReport) stays `false`.
//!
//! The peak watermark is a single global; [`measure`] resets it, so
//! measured regions must not overlap (serial use only — which is also
//! the only regime where per-region peaks are meaningful).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};

static EVENTS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Counting wrapper over the system allocator: every `alloc` and
/// `realloc` bumps the event counter; live bytes track the running
/// total and feed a monotone peak watermark.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        EVENTS.fetch_add(1, Relaxed);
        let live = LIVE.fetch_add(layout.size(), Relaxed) + layout.size();
        PEAK.fetch_max(live, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        EVENTS.fetch_add(1, Relaxed);
        if new_size >= layout.size() {
            let grow = new_size - layout.size();
            let live = LIVE.fetch_add(grow, Relaxed) + grow;
            PEAK.fetch_max(live, Relaxed);
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Record that [`CountingAlloc`] is this process's `#[global_allocator]`.
/// Call once at the top of `main`; reports use this to distinguish "0
/// allocations" from "not measured".
pub fn mark_installed() {
    INSTALLED.store(true, Relaxed);
}

/// True once [`mark_installed`] has been called.
pub fn installed() -> bool {
    INSTALLED.load(Relaxed)
}

/// Total allocation events (`alloc` + `realloc`) since process start.
pub fn events() -> u64 {
    EVENTS.load(Relaxed)
}

/// Currently live heap bytes.
pub fn live_bytes() -> u64 {
    LIVE.load(Relaxed) as u64
}

/// Peak live heap bytes since process start or the last [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Relaxed) as u64
}

/// Reset the peak watermark to the current live byte count, so the next
/// [`peak_bytes`] reading reflects only the region after this call.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Relaxed), Relaxed);
}

/// Allocation statistics for one [`measure`]d region.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllocStats {
    /// Allocation events during the region.
    pub events: u64,
    /// Absolute peak live bytes during the region (watermark reset at
    /// region start — same semantics as the original bench counter).
    pub peak_bytes: u64,
    /// Live bytes at region start. `peak_bytes - baseline_bytes` is the
    /// region's own contribution to the peak — use it when the caller
    /// holds long-lived state (an output model, a dictionary) that must
    /// not be charged to the measured region.
    pub baseline_bytes: u64,
}

impl AllocStats {
    /// Peak live bytes attributable to the region itself: the watermark
    /// minus whatever was already live when the region started (the
    /// same subtraction spans apply to their `alloc_peak_bytes`).
    pub fn region_peak_bytes(&self) -> u64 {
        self.peak_bytes.saturating_sub(self.baseline_bytes)
    }
}

/// Run `f` with the peak watermark reset, returning its result plus the
/// region's allocation statistics. Regions must not overlap (the
/// watermark is global): call this serially only.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    reset_peak();
    let baseline_bytes = live_bytes();
    let before = events();
    let r = std::hint::black_box(f());
    let stats = AllocStats {
        events: events().saturating_sub(before),
        peak_bytes: peak_bytes(),
        baseline_bytes,
    };
    (r, stats)
}
