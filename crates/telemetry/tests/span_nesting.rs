//! Span drop-guard properties: the per-thread span stack stays
//! well-nested — and fully unwinds — under arbitrary interleavings of
//! nesting, early returns, and panics, and finished reports reflect the
//! nesting that actually happened.
//!
//! Spans and the collector are process-global, so every test in this
//! binary serializes on one mutex (integration-test binaries are their
//! own process, so other test binaries can't interfere).

use dbmine_telemetry as telemetry;
use proptest::prelude::*;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A prop_assert failure in another case unwinds with the guard
    // held; the poison flag carries no state worth keeping here.
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// One step of a generated span program: open `opens` nested spans,
/// then maybe panic inside them.
#[derive(Clone, Debug)]
struct Step {
    opens: usize,
    panics: bool,
}

fn arb_program() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0usize..4, 0u32..10).prop_map(|(opens, roll)| Step {
            opens,
            panics: roll < 3,
        }),
        1..8,
    )
}

fn run_step(step: &Step, names: &[&'static str]) {
    let mut guards = Vec::new();
    for i in 0..step.opens {
        guards.push(telemetry::span(names[i % names.len()]));
    }
    if step.panics {
        panic!("injected panic under {} open spans", step.opens);
    }
    // Early return with guards alive: Drop closes them in reverse order.
}

proptest! {
    /// After every step — panicking or not — the thread's span stack is
    /// back to empty, and finish() still produces a report.
    #[test]
    fn stack_unwinds_under_panics(program in arb_program()) {
        let _guard = lock();
        const NAMES: &[&str] = &["t.alpha", "t.beta", "t.gamma", "t.delta"];
        telemetry::begin();
        for step in &program {
            let result = std::panic::catch_unwind(|| run_step(step, NAMES));
            prop_assert_eq!(result.is_err(), step.panics);
            prop_assert_eq!(telemetry::span_depth(), 0, "stack not unwound after {:?}", step);
        }
        let report = telemetry::finish();
        if telemetry::compiled() {
            let opened: usize = program.iter().map(|s| s.opens).sum();
            let recorded: u64 = {
                fn calls(n: &telemetry::ReportNode) -> u64 {
                    n.calls + n.children.iter().map(calls).sum::<u64>()
                }
                report.roots.iter().map(calls).sum()
            };
            prop_assert_eq!(recorded, opened as u64, "every dropped span records exactly once");
        } else {
            prop_assert!(report.roots.is_empty());
        }
        // The report must serialize regardless.
        prop_assert!(report.to_json().contains("\"schema_version\""));
    }
}

#[test]
fn nesting_shows_up_in_report_tree() {
    let _guard = lock();
    telemetry::begin();
    {
        let _outer = telemetry::span("t.outer");
        {
            let _inner = telemetry::span("t.inner");
        }
        {
            let _inner = telemetry::span("t.inner");
        }
    }
    let report = telemetry::finish();
    if !telemetry::compiled() {
        assert!(report.roots.is_empty());
        return;
    }
    let outer = report.find("t.outer").expect("outer span recorded");
    assert_eq!(outer.calls, 1);
    let inner = outer.find("t.inner").expect("inner nested under outer");
    assert_eq!(inner.calls, 2);
    assert!(outer.total_ms >= inner.total_ms);
    assert!(report.wall_ms >= outer.total_ms);
}

#[test]
fn spans_outside_window_are_not_recorded() {
    let _guard = lock();
    // No begin(): collection off, spans are cheap no-ops.
    assert!(!telemetry::collecting());
    {
        let _s = telemetry::span("t.ignored");
        assert_eq!(telemetry::span_depth(), 0);
    }
    telemetry::begin();
    let report = telemetry::finish();
    assert!(report.find("t.ignored").is_none());
}

#[test]
fn macro_form_matches_function_form() {
    let _guard = lock();
    telemetry::begin();
    {
        let _s = dbmine_telemetry::span!("t.macro");
    }
    let report = telemetry::finish();
    if telemetry::compiled() {
        assert!(report.find("t.macro").is_some());
    }
}
