//! Minimal, dependency-free CSV reader/writer.
//!
//! Supports RFC-4180-style quoting (`"` field delimiters, `""` escapes,
//! embedded commas and newlines). Empty unquoted fields are read as NULL;
//! quoted empty fields (`""`) are read as the empty-string value, so NULLs
//! survive a round-trip.

use crate::relation::{Relation, RelationBuilder};
use crate::spill::StoreError;
use std::fmt;
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// Errors produced by the CSV reader.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record had a different number of fields than the header.
    RaggedRow {
        line: usize,
        expected: usize,
        got: usize,
    },
    /// The input was empty (no header).
    Empty,
    /// A quoted field was never closed.
    UnterminatedQuote { line: usize },
    /// The header has more columns than [`crate::attrset::MAX_ATTRS`]
    /// (attribute sets are 64-bit masks).
    TooManyAttrs { got: usize, max: usize },
    /// Error reading a binary columnar shard store ([`crate::spill`]).
    Store(StoreError),
    /// A chunk pass saw different bytes than the scan pass (the file
    /// was modified between passes): a value missing from the frozen
    /// dictionary, a changed header, or a changed tuple count.
    ChangedInput {
        /// 1-based line of the offending record, where known.
        line: Option<usize>,
        detail: String,
    },
    /// A chunk pass was requested on a relation whose scan consumed a
    /// plain reader, so there is no file to re-open
    /// ([`crate::ShardedRelation::chunks`]). Re-scan from a path, spill
    /// to a store, or drive passes with `chunks_from`.
    NoBacking,
    /// An error with the source file attached. Line numbers, where
    /// known, stay on the wrapped error — the `Display` output is
    /// `path: line N: …`, so a mid-pass failure on a 10⁷-row file names
    /// the exact file and record.
    InFile {
        path: PathBuf,
        source: Box<CsvError>,
    },
}

impl CsvError {
    /// Wraps `self` with the file it came from. Already-wrapped errors
    /// keep their original (innermost-pass) path.
    pub fn in_file(self, path: impl Into<PathBuf>) -> CsvError {
        match self {
            CsvError::InFile { .. } => self,
            other => CsvError::InFile {
                path: path.into(),
                source: Box::new(other),
            },
        }
    }
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::RaggedRow {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected} fields, got {got}"),
            CsvError::Empty => write!(f, "empty CSV input (missing header)"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            CsvError::TooManyAttrs { got, max } => {
                write!(f, "header has {got} columns; at most {max} supported")
            }
            CsvError::Store(e) => write!(f, "shard store: {e}"),
            CsvError::ChangedInput { line, detail } => {
                let at = line.map(|l| format!("line {l}: ")).unwrap_or_default();
                write!(f, "{at}CSV changed between scan and chunk passes: {detail}")
            }
            CsvError::NoBacking => write!(
                f,
                "relation has no backing file to re-read; \
                 scan from a path, spill to a store, or use chunks_from"
            ),
            CsvError::InFile { path, source } => write!(f, "{}: {source}", path.display()),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Store(e) => Some(e),
            CsvError::InFile { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<StoreError> for CsvError {
    fn from(e: StoreError) -> Self {
        CsvError::Store(e)
    }
}

/// A parsed field: `None` = NULL (empty unquoted field).
pub(crate) type Field = Option<String>;

/// Splits one logical CSV record starting at `input[pos..]`.
/// Returns the fields and the next position, or None at end of input.
pub(crate) fn parse_record(
    input: &[u8],
    pos: &mut usize,
    line: &mut usize,
) -> Result<Option<Vec<Field>>, CsvError> {
    if *pos >= input.len() {
        return Ok(None);
    }
    let mut fields: Vec<Field> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut was_quoted = false;
    let start_line = *line;
    let mut i = *pos;
    loop {
        if i >= input.len() {
            if quoted {
                return Err(CsvError::UnterminatedQuote { line: start_line });
            }
            push_field(&mut fields, std::mem::take(&mut field), was_quoted);
            *pos = i;
            return Ok(Some(fields));
        }
        let b = input[i];
        if quoted {
            match b {
                b'"' => {
                    if input.get(i + 1) == Some(&b'"') {
                        field.push('"');
                        i += 2;
                    } else {
                        quoted = false;
                        i += 1;
                    }
                }
                b'\n' => {
                    field.push('\n');
                    *line += 1;
                    i += 1;
                }
                _ => {
                    field.push(b as char);
                    i += 1;
                }
            }
            continue;
        }
        match b {
            b'"' if field.is_empty() && !was_quoted => {
                quoted = true;
                was_quoted = true;
                i += 1;
            }
            b',' => {
                push_field(&mut fields, std::mem::take(&mut field), was_quoted);
                was_quoted = false;
                i += 1;
            }
            b'\r' if input.get(i + 1) == Some(&b'\n') => {
                push_field(&mut fields, std::mem::take(&mut field), was_quoted);
                *line += 1;
                *pos = i + 2;
                return Ok(Some(fields));
            }
            b'\n' => {
                push_field(&mut fields, std::mem::take(&mut field), was_quoted);
                *line += 1;
                *pos = i + 1;
                return Ok(Some(fields));
            }
            _ => {
                field.push(b as char);
                i += 1;
            }
        }
    }
}

fn push_field(fields: &mut Vec<Field>, field: String, was_quoted: bool) {
    if field.is_empty() && !was_quoted {
        fields.push(None);
    } else {
        fields.push(Some(field));
    }
}

/// Resolves a parsed header record into attribute names (`col{i}`
/// fallback for NULL header cells) and rejects too-wide schemas. Shared
/// by the in-memory reader and the chunked stream ([`crate::shard`]) so
/// both see exactly the same schema for the same bytes.
pub(crate) fn header_names(header: Vec<Field>) -> Result<Vec<String>, CsvError> {
    let names: Vec<String> = header
        .into_iter()
        .enumerate()
        .map(|(i, f)| f.unwrap_or_else(|| format!("col{i}")))
        .collect();
    if names.len() > crate::attrset::MAX_ATTRS {
        // RelationBuilder::new would panic on a too-wide schema; a CSV
        // reader must fail typed instead (the daemon's request path
        // feeds it untrusted input).
        return Err(CsvError::TooManyAttrs {
            got: names.len(),
            max: crate::attrset::MAX_ATTRS,
        });
    }
    Ok(names)
}

/// Classifies a parsed data record against the schema width: `None` for
/// a skippable blank line, the record for a well-formed row, an error for
/// a ragged one. Shared by the in-memory reader and the chunked stream
/// so both accept exactly the same rows.
pub(crate) fn normalize_row(
    rec: Vec<Field>,
    expected: usize,
    line: usize,
) -> Result<Option<Vec<Field>>, CsvError> {
    // A blank line parses as one NULL field. For multi-column schemas
    // it is decoration and skipped; for single-column schemas it IS a
    // valid record (a NULL cell), so it must round-trip.
    if expected > 1 && rec.len() == 1 && rec[0].is_none() {
        return Ok(None);
    }
    if rec.len() != expected {
        return Err(CsvError::RaggedRow {
            line,
            expected,
            got: rec.len(),
        });
    }
    Ok(Some(rec))
}

/// Reads a relation from CSV text. The first record is the header.
pub fn read_relation(reader: impl Read, name: &str) -> Result<Relation, CsvError> {
    let mut buf = Vec::new();
    BufReader::new(reader).read_to_end(&mut buf)?;
    let mut pos = 0usize;
    let mut line = 1usize;
    let header = match parse_record(&buf, &mut pos, &mut line)? {
        Some(h) => h,
        None => return Err(CsvError::Empty),
    };
    let names = header_names(header)?;
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut b = RelationBuilder::new(name, &name_refs);
    while let Some(rec) = parse_record(&buf, &mut pos, &mut line)? {
        let Some(rec) = normalize_row(rec, names.len(), line)? else {
            continue;
        };
        let cells: Vec<Option<&str>> = rec.iter().map(|f| f.as_deref()).collect();
        b.push_row(&cells);
    }
    Ok(b.build())
}

/// Reads a relation from a CSV file; the file stem becomes the name.
pub fn read_relation_path(path: impl AsRef<Path>) -> Result<Relation, CsvError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation")
        .to_string();
    let file = std::fs::File::open(path)?;
    read_relation(file, &name)
}

/// True if a field must be quoted when written.
fn needs_quoting(s: &str) -> bool {
    s.is_empty() || s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r')
}

fn write_field(w: &mut impl Write, s: &str) -> std::io::Result<()> {
    if needs_quoting(s) {
        write!(w, "\"{}\"", s.replace('"', "\"\""))
    } else {
        w.write_all(s.as_bytes())
    }
}

/// Writes one header record. Round-trips through [`read_relation`].
pub fn write_header(w: &mut impl Write, names: &[impl AsRef<str>]) -> std::io::Result<()> {
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            w.write_all(b",")?;
        }
        write_field(w, name.as_ref())?;
    }
    w.write_all(b"\n")
}

/// Writes one data record: NULL cells (`None`) as empty unquoted fields,
/// values quoted as needed. Round-trips through [`read_relation`], so a
/// generator can stream arbitrarily many rows to disk without ever
/// materializing a [`Relation`].
pub fn write_record(w: &mut impl Write, cells: &[Option<&str>]) -> std::io::Result<()> {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            w.write_all(b",")?;
        }
        if let Some(s) = cell {
            write_field(w, s)?;
        }
    }
    w.write_all(b"\n")
}

/// Writes a relation as CSV (header + rows). NULL cells are written as
/// empty unquoted fields so they round-trip through [`read_relation`].
pub fn write_relation(rel: &Relation, w: &mut impl Write) -> std::io::Result<()> {
    write_header(w, rel.attr_names())?;
    let mut row: Vec<Option<&str>> = Vec::with_capacity(rel.n_attrs());
    for t in 0..rel.n_tuples() {
        row.clear();
        row.extend((0..rel.n_attrs()).map(|a| (!rel.is_null(t, a)).then(|| rel.value_str(t, a))));
        write_record(w, &row)?;
    }
    Ok(())
}

/// Writes a relation to a CSV file.
pub fn write_relation_path(rel: &Relation, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_relation(rel, &mut w)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Relation {
        read_relation(s.as_bytes(), "t").unwrap()
    }

    #[test]
    fn simple_csv() {
        let r = parse("A,B\n1,2\n3,4\n");
        assert_eq!(r.n_tuples(), 2);
        assert_eq!(r.attr_names(), &["A".to_string(), "B".to_string()]);
        assert_eq!(r.value_str(1, 1), "4");
    }

    #[test]
    fn missing_trailing_newline() {
        let r = parse("A,B\n1,2");
        assert_eq!(r.n_tuples(), 1);
        assert_eq!(r.value_str(0, 1), "2");
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let r = parse("A,B\n\"x,y\",\"line1\nline2\"\n");
        assert_eq!(r.value_str(0, 0), "x,y");
        assert_eq!(r.value_str(0, 1), "line1\nline2");
    }

    #[test]
    fn escaped_quotes() {
        let r = parse("A\n\"say \"\"hi\"\"\"\n");
        assert_eq!(r.value_str(0, 0), "say \"hi\"");
    }

    #[test]
    fn empty_field_is_null_but_quoted_empty_is_value() {
        let r = parse("A,B\n,\"\"\n");
        assert!(r.is_null(0, 0));
        assert!(!r.is_null(0, 1));
        assert_eq!(r.value_str(0, 1), "");
    }

    #[test]
    fn crlf_line_endings() {
        let r = parse("A,B\r\n1,2\r\n");
        assert_eq!(r.n_tuples(), 1);
        assert_eq!(r.value_str(0, 0), "1");
    }

    #[test]
    fn blank_lines_skipped_for_multi_column() {
        let r = parse("A,B\nx,y\n\np,q\n");
        assert_eq!(r.n_tuples(), 2);
    }

    #[test]
    fn single_column_blank_line_is_null_record() {
        let r = parse("A\nx\n\ny\n");
        assert_eq!(r.n_tuples(), 3);
        assert!(r.is_null(1, 0));
    }

    #[test]
    fn ragged_row_is_error() {
        let e = read_relation("A,B\n1\n".as_bytes(), "t").unwrap_err();
        assert!(matches!(
            e,
            CsvError::RaggedRow {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(
            read_relation("".as_bytes(), "t"),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(matches!(
            read_relation("A\n\"oops\n".as_bytes(), "t"),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn too_many_columns_is_error_not_panic() {
        let header: Vec<String> = (0..65).map(|i| format!("c{i}")).collect();
        let csv = format!("{}\n", header.join(","));
        let e = read_relation(csv.as_bytes(), "wide").unwrap_err();
        assert!(matches!(e, CsvError::TooManyAttrs { got: 65, max: 64 }));
    }

    #[test]
    fn exactly_max_columns_is_fine() {
        let header: Vec<String> = (0..64).map(|i| format!("c{i}")).collect();
        let csv = format!("{}\n", header.join(","));
        let r = read_relation(csv.as_bytes(), "wide").unwrap();
        assert_eq!(r.n_attrs(), 64);
    }

    #[test]
    fn roundtrip_preserves_nulls_and_quotes() {
        let mut b = RelationBuilder::new("t", &["X", "Y"]);
        b.push_row(&[Some("a,b"), None]);
        b.push_row(&[Some("q\"q"), Some("plain")]);
        let rel = b.build();
        let mut out = Vec::new();
        write_relation(&rel, &mut out).unwrap();
        let back = read_relation(out.as_slice(), "t").unwrap();
        assert_eq!(back.n_tuples(), 2);
        assert_eq!(back.value_str(0, 0), "a,b");
        assert!(back.is_null(0, 1));
        assert_eq!(back.value_str(1, 0), "q\"q");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dbmine_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig4.csv");
        let rel = crate::paper::figure4();
        write_relation_path(&rel, &path).unwrap();
        let back = read_relation_path(&path).unwrap();
        assert_eq!(back.n_tuples(), 5);
        assert_eq!(back.name(), "fig4");
        assert_eq!(back.value_str(4, 2), "x");
        std::fs::remove_dir_all(&dir).ok();
    }
}
