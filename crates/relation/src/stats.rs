//! Projection statistics: distinct counts and bag-semantics entropies.
//!
//! These are the primitives behind the paper's duplication measures
//! (Section 8): *Relative Attribute Duplication* needs the entropy of the
//! tuples projected on an attribute set (bag semantics), and *Relative
//! Tuple Reduction* needs the distinct count of the projection (set
//! semantics). Both live in `dbmine-fdrank`; this module supplies the raw
//! counts so they stay cheap to compute for many attribute sets.

use crate::attrset::AttrSet;
use crate::relation::{AttrId, Relation};
use dbmine_infotheory::entropy;
use std::collections::HashMap;

/// Frequencies of the distinct tuples of `rel` projected on `attrs`
/// (bag semantics: every input tuple contributes one occurrence).
pub fn projection_counts(rel: &Relation, attrs: AttrSet) -> HashMap<Vec<u32>, usize> {
    let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
    for t in 0..rel.n_tuples() {
        *counts.entry(rel.tuple_projected(t, attrs)).or_insert(0) += 1;
    }
    counts
}

/// Number of distinct tuples in the projection of `rel` on `attrs`
/// (the `n'` of the RTR measure).
pub fn projection_distinct(rel: &Relation, attrs: AttrSet) -> usize {
    projection_counts(rel, attrs).len()
}

/// Shannon entropy (bits) of the projected-tuple distribution under bag
/// semantics: `H(π_attrs(T))` with `p(row) = count(row)/n`.
pub fn projection_entropy(rel: &Relation, attrs: AttrSet) -> f64 {
    let n = rel.n_tuples() as f64;
    if n == 0.0 {
        return 0.0;
    }
    entropy(
        projection_counts(rel, attrs)
            .values()
            .map(|&c| c as f64 / n),
    )
}

/// Distinct count *and* bag-semantics entropy of the projection from a
/// single shared counts pass. This is the shape `dbmine-context`
/// memoizes per `AttrSet`: RAD needs the entropy, RTR the distinct
/// count, and computing both from one `projection_counts` map halves
/// the projection work for every cached attribute set.
pub fn projection_stats(rel: &Relation, attrs: AttrSet) -> (usize, f64) {
    let n = rel.n_tuples() as f64;
    let counts = projection_counts(rel, attrs);
    let entropy = if n == 0.0 {
        0.0
    } else {
        entropy(counts.values().map(|&c| c as f64 / n))
    };
    (counts.len(), entropy)
}

/// Entropy (bits) of a single column's empirical value distribution.
pub fn column_entropy(rel: &Relation, a: AttrId) -> f64 {
    projection_entropy(rel, AttrSet::single(a))
}

/// Number of distinct values in a single column.
pub fn column_distinct(rel: &Relation, a: AttrId) -> usize {
    projection_distinct(rel, AttrSet::single(a))
}

/// Per-column summary used by reports: name, distinct count, NULL
/// fraction, entropy.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnProfile {
    pub name: String,
    pub distinct: usize,
    pub null_fraction: f64,
    pub entropy: f64,
}

/// Profiles every column of the relation.
pub fn profile_columns(rel: &Relation) -> Vec<ColumnProfile> {
    (0..rel.n_attrs())
        .map(|a| ColumnProfile {
            name: rel.attr_names()[a].clone(),
            distinct: column_distinct(rel, a),
            null_fraction: rel.null_fraction(a),
            entropy: column_entropy(rel, a),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{figure1, figure4};
    use dbmine_infotheory::EPS;

    #[test]
    fn distinct_counts_figure4() {
        let r = figure4();
        assert_eq!(projection_distinct(&r, AttrSet::single(0)), 4); // a,w,y,z
        assert_eq!(projection_distinct(&r, AttrSet::single(1)), 2); // 1,2
        assert_eq!(projection_distinct(&r, AttrSet::single(2)), 3); // p,r,x
        assert_eq!(projection_distinct(&r, r.all_attrs()), 5);
        // Projection on {B,C}: (1,p),(1,r),(2,x),(2,x),(2,x) → 3 distinct.
        assert_eq!(projection_distinct(&r, [1, 2].into_iter().collect()), 3);
    }

    #[test]
    fn entropy_of_constant_column_is_zero() {
        let r = figure1();
        let city = r.attr_id("City").unwrap();
        assert!(column_entropy(&r, city).abs() < EPS);
        assert_eq!(column_distinct(&r, city), 1);
    }

    #[test]
    fn entropy_of_b_column_figure4() {
        // B = [1,1,2,2,2]: H = -(0.4 log 0.4 + 0.6 log 0.6) ≈ 0.971 bits.
        let r = figure4();
        let h = column_entropy(&r, 1);
        assert!((h - 0.970_95).abs() < 1e-4, "got {h}");
    }

    #[test]
    fn projection_entropy_monotone_in_attrs() {
        // Adding attributes can only refine the partition → entropy grows.
        let r = figure4();
        let h1 = projection_entropy(&r, AttrSet::single(1));
        let h12 = projection_entropy(&r, [1, 2].into_iter().collect());
        let hall = projection_entropy(&r, r.all_attrs());
        assert!(h1 <= h12 + EPS);
        assert!(h12 <= hall + EPS);
    }

    #[test]
    fn profile_reports_all_columns() {
        let r = figure1();
        let p = profile_columns(&r);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].name, "Ename");
        assert_eq!(p[0].distinct, 2);
        assert_eq!(p[1].distinct, 1);
        assert_eq!(p[2].null_fraction, 0.0);
    }

    #[test]
    fn empty_relation_entropy_zero() {
        let r = crate::relation::RelationBuilder::new("e", &["X"]).build();
        assert_eq!(projection_entropy(&r, AttrSet::single(0)), 0.0);
        assert_eq!(projection_distinct(&r, AttrSet::single(0)), 0);
    }
}
