//! Projection statistics: distinct counts and bag-semantics entropies.
//!
//! These are the primitives behind the paper's duplication measures
//! (Section 8): *Relative Attribute Duplication* needs the entropy of the
//! tuples projected on an attribute set (bag semantics), and *Relative
//! Tuple Reduction* needs the distinct count of the projection (set
//! semantics). Both live in `dbmine-fdrank`; this module supplies the raw
//! counts so they stay cheap to compute for many attribute sets.
//!
//! All folds run in **first-occurrence order** of the projected tuples
//! ([`ProjectionCounter`]), never in hash-map iteration order: the
//! entropy sum is a float fold, so a deterministic order is what makes
//! the numbers reproducible run-to-run *and* bit-identical between the
//! in-memory path and the chunked-ingest path (`crate::shard`), which
//! feeds the same counter the same rows in the same global tuple order.

use crate::attrset::AttrSet;
use crate::relation::{AttrId, Relation};
use dbmine_infotheory::entropy;
use std::collections::HashMap;

/// A streaming group-by over projected tuples that keeps occurrence
/// counts in **first-occurrence order**. Feeding it the same key
/// sequence always yields the same `counts()` slice, so every float
/// fold over the counts is deterministic — the shared substrate of the
/// in-memory and chunk-fold projection statistics.
#[derive(Debug, Default)]
pub struct ProjectionCounter {
    slots: HashMap<Vec<u32>, u32>,
    counts: Vec<usize>,
}

impl ProjectionCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one projected tuple (its value ids in ascending attribute
    /// order).
    pub fn observe(&mut self, key: Vec<u32>) {
        match self.slots.get(&key) {
            Some(&s) => self.counts[s as usize] += 1,
            None => {
                self.slots.insert(key, self.counts.len() as u32);
                self.counts.push(1);
            }
        }
    }

    /// Number of distinct projected tuples seen so far.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Occurrence counts, in first-occurrence order.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Shannon entropy (bits) of the observed distribution over `n`
    /// total observations (bag semantics, `p = count/n`); zero for an
    /// empty fold.
    pub fn entropy(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        entropy(self.counts.iter().map(|&c| c as f64 / n))
    }
}

fn count_projection(rel: &Relation, attrs: AttrSet) -> ProjectionCounter {
    let mut counter = ProjectionCounter::new();
    for t in 0..rel.n_tuples() {
        counter.observe(rel.tuple_projected(t, attrs));
    }
    counter
}

/// Frequencies of the distinct tuples of `rel` projected on `attrs`
/// (bag semantics: every input tuple contributes one occurrence).
pub fn projection_counts(rel: &Relation, attrs: AttrSet) -> HashMap<Vec<u32>, usize> {
    let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
    for t in 0..rel.n_tuples() {
        *counts.entry(rel.tuple_projected(t, attrs)).or_insert(0) += 1;
    }
    counts
}

/// Number of distinct tuples in the projection of `rel` on `attrs`
/// (the `n'` of the RTR measure).
pub fn projection_distinct(rel: &Relation, attrs: AttrSet) -> usize {
    count_projection(rel, attrs).distinct()
}

/// Shannon entropy (bits) of the projected-tuple distribution under bag
/// semantics: `H(π_attrs(T))` with `p(row) = count(row)/n`, folded in
/// first-occurrence order.
pub fn projection_entropy(rel: &Relation, attrs: AttrSet) -> f64 {
    count_projection(rel, attrs).entropy(rel.n_tuples())
}

/// Distinct count *and* bag-semantics entropy of the projection from a
/// single shared counts pass. This is the shape `dbmine-context`
/// memoizes per `AttrSet`: RAD needs the entropy, RTR the distinct
/// count, and computing both from one counting pass halves the
/// projection work for every cached attribute set.
pub fn projection_stats(rel: &Relation, attrs: AttrSet) -> (usize, f64) {
    let counter = count_projection(rel, attrs);
    (counter.distinct(), counter.entropy(rel.n_tuples()))
}

/// Entropy (bits) of a single column's empirical value distribution.
pub fn column_entropy(rel: &Relation, a: AttrId) -> f64 {
    projection_entropy(rel, AttrSet::single(a))
}

/// Number of distinct values in a single column.
pub fn column_distinct(rel: &Relation, a: AttrId) -> usize {
    projection_distinct(rel, AttrSet::single(a))
}

/// Per-column summary used by reports: name, distinct count, NULL
/// fraction, entropy.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnProfile {
    pub name: String,
    pub distinct: usize,
    pub null_fraction: f64,
    pub entropy: f64,
}

/// Profiles every column of the relation.
pub fn profile_columns(rel: &Relation) -> Vec<ColumnProfile> {
    (0..rel.n_attrs())
        .map(|a| ColumnProfile {
            name: rel.attr_names()[a].clone(),
            distinct: column_distinct(rel, a),
            null_fraction: rel.null_fraction(a),
            entropy: column_entropy(rel, a),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{figure1, figure4};
    use dbmine_infotheory::EPS;

    #[test]
    fn distinct_counts_figure4() {
        let r = figure4();
        assert_eq!(projection_distinct(&r, AttrSet::single(0)), 4); // a,w,y,z
        assert_eq!(projection_distinct(&r, AttrSet::single(1)), 2); // 1,2
        assert_eq!(projection_distinct(&r, AttrSet::single(2)), 3); // p,r,x
        assert_eq!(projection_distinct(&r, r.all_attrs()), 5);
        // Projection on {B,C}: (1,p),(1,r),(2,x),(2,x),(2,x) → 3 distinct.
        assert_eq!(projection_distinct(&r, [1, 2].into_iter().collect()), 3);
    }

    #[test]
    fn entropy_of_constant_column_is_zero() {
        let r = figure1();
        let city = r.attr_id("City").unwrap();
        assert!(column_entropy(&r, city).abs() < EPS);
        assert_eq!(column_distinct(&r, city), 1);
    }

    #[test]
    fn entropy_of_b_column_figure4() {
        // B = [1,1,2,2,2]: H = -(0.4 log 0.4 + 0.6 log 0.6) ≈ 0.971 bits.
        let r = figure4();
        let h = column_entropy(&r, 1);
        assert!((h - 0.970_95).abs() < 1e-4, "got {h}");
    }

    #[test]
    fn projection_entropy_monotone_in_attrs() {
        // Adding attributes can only refine the partition → entropy grows.
        let r = figure4();
        let h1 = projection_entropy(&r, AttrSet::single(1));
        let h12 = projection_entropy(&r, [1, 2].into_iter().collect());
        let hall = projection_entropy(&r, r.all_attrs());
        assert!(h1 <= h12 + EPS);
        assert!(h12 <= hall + EPS);
    }

    #[test]
    fn profile_reports_all_columns() {
        let r = figure1();
        let p = profile_columns(&r);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].name, "Ename");
        assert_eq!(p[0].distinct, 2);
        assert_eq!(p[1].distinct, 1);
        assert_eq!(p[2].null_fraction, 0.0);
    }

    #[test]
    fn empty_relation_entropy_zero() {
        let r = crate::relation::RelationBuilder::new("e", &["X"]).build();
        assert_eq!(projection_entropy(&r, AttrSet::single(0)), 0.0);
        assert_eq!(projection_distinct(&r, AttrSet::single(0)), 0);
    }

    #[test]
    fn counter_order_is_first_occurrence() {
        let mut c = ProjectionCounter::new();
        for key in [vec![7u32], vec![3], vec![7], vec![7], vec![3], vec![9]] {
            c.observe(key);
        }
        assert_eq!(c.counts(), &[3, 2, 1]);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn counter_entropy_matches_projection_entropy() {
        // Same fold, same order, same bits.
        let r = figure4();
        let attrs: AttrSet = [0usize, 1].into_iter().collect();
        let mut c = ProjectionCounter::new();
        for t in 0..r.n_tuples() {
            c.observe(r.tuple_projected(t, attrs));
        }
        assert_eq!(
            c.entropy(r.n_tuples()).to_bits(),
            projection_entropy(&r, attrs).to_bits()
        );
    }
}
