//! Columnar categorical relations.

use crate::attrset::{AttrSet, MAX_ATTRS};
use crate::dict::{ValueDict, ValueId, NULL_VALUE};

/// Attribute identifier: an index into the schema, `0..m`.
pub type AttrId = usize;

/// A relation of `n` tuples over `m` categorical attributes, stored
/// column-wise with globally interned values.
///
/// This is the paper's model (Section 4): *"a set T of n tuples is defined
/// on m attributes (A1, …, Am); any tuple takes exactly one value from Vi
/// for the i-th attribute."* Missing values take the NULL value, which the
/// paper treats as an ordinary (and, in DBLP, highly duplicated) value.
#[derive(Clone, Debug)]
pub struct Relation {
    name: String,
    attr_names: Vec<String>,
    dict: ValueDict,
    /// `columns[a][t]` = value id of tuple `t` in attribute `a`.
    columns: Vec<Vec<ValueId>>,
    n: usize,
}

impl Relation {
    /// Assembles a relation from already-validated parts — the
    /// store-backed materialization path in [`crate::shard`], which has
    /// checked column count, lengths and value-id ranges block by block.
    pub(crate) fn from_parts(
        name: String,
        attr_names: Vec<String>,
        dict: ValueDict,
        columns: Vec<Vec<ValueId>>,
        n: usize,
    ) -> Relation {
        debug_assert_eq!(columns.len(), attr_names.len());
        debug_assert!(columns.iter().all(|c| c.len() == n));
        Relation {
            name,
            attr_names,
            dict,
            columns,
            n,
        }
    }

    /// Number of tuples `n`.
    pub fn n_tuples(&self) -> usize {
        self.n
    }

    /// Number of attributes `m`.
    pub fn n_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// The relation's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute names, in schema order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// The id of the attribute called `name`, if any.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attr_names.iter().position(|a| a == name)
    }

    /// The full attribute set `{0, …, m-1}`.
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::full(self.n_attrs())
    }

    /// The value dictionary.
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// The value id of tuple `t` in attribute `a`.
    pub fn value(&self, t: usize, a: AttrId) -> ValueId {
        self.columns[a][t]
    }

    /// True if tuple `t` is NULL in attribute `a`.
    pub fn is_null(&self, t: usize, a: AttrId) -> bool {
        self.value(t, a) == NULL_VALUE
    }

    /// The display string of tuple `t` in attribute `a`.
    pub fn value_str(&self, t: usize, a: AttrId) -> &str {
        self.dict.string(self.value(t, a))
    }

    /// The full column of attribute `a`.
    pub fn column(&self, a: AttrId) -> &[ValueId] {
        &self.columns[a]
    }

    /// The tuple `t` as a vector of value ids in schema order.
    pub fn tuple(&self, t: usize) -> Vec<ValueId> {
        self.columns.iter().map(|c| c[t]).collect()
    }

    /// The tuple `t` projected on `attrs`, in increasing attribute order.
    pub fn tuple_projected(&self, t: usize, attrs: AttrSet) -> Vec<ValueId> {
        attrs.iter().map(|a| self.columns[a][t]).collect()
    }

    /// Fraction of NULL cells in attribute `a`.
    pub fn null_fraction(&self, a: AttrId) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let nulls = self.columns[a].iter().filter(|&&v| v == NULL_VALUE).count();
        nulls as f64 / self.n as f64
    }

    /// Builds a new relation containing only the attributes in `attrs`
    /// (vertical projection, bag semantics: duplicates are kept).
    pub fn project(&self, attrs: AttrSet) -> Relation {
        let keep: Vec<AttrId> = attrs.iter().collect();
        Relation {
            name: format!("{}[π]", self.name),
            attr_names: keep.iter().map(|&a| self.attr_names[a].clone()).collect(),
            dict: self.dict.clone(),
            columns: keep.iter().map(|&a| self.columns[a].clone()).collect(),
            n: self.n,
        }
    }

    /// Projects onto `attrs` and removes duplicate rows (set semantics) —
    /// the π of relational algebra. The paper's decompositions and
    /// vertical partitions are built from this.
    pub fn project_distinct(&self, attrs: AttrSet, name: &str) -> Relation {
        self.project_distinct_with_rows(attrs, name).0
    }

    /// As [`Self::project_distinct`], also returning, for each projected
    /// tuple, the index of the parent tuple it was taken from (the first
    /// occurrence of its projected value combination). The row list is
    /// strictly increasing, which is what lets a parent's stripped
    /// partitions be *restricted* onto the projection instead of rebuilt
    /// (see `StrippedPartition::restrict_remap`).
    pub fn project_distinct_with_rows(&self, attrs: AttrSet, name: &str) -> (Relation, Vec<u32>) {
        let keep: Vec<AttrId> = attrs.iter().collect();
        let names: Vec<&str> = keep.iter().map(|&a| self.attr_names[a].as_str()).collect();
        let mut seen: std::collections::HashSet<Vec<ValueId>> = Default::default();
        let mut b = RelationBuilder::new(name, &names);
        let mut rows: Vec<u32> = Vec::new();
        for t in 0..self.n {
            if seen.insert(self.tuple_projected(t, attrs)) {
                let row: Vec<Option<&str>> = keep
                    .iter()
                    .map(|&a| {
                        if self.is_null(t, a) {
                            None
                        } else {
                            Some(self.value_str(t, a))
                        }
                    })
                    .collect();
                b.push_row(&row);
                rows.push(t as u32);
            }
        }
        (b.build(), rows)
    }

    /// Builds a new relation containing only the tuples in `rows`
    /// (horizontal selection), preserving their order.
    pub fn select(&self, rows: &[usize], name: &str) -> Relation {
        Relation {
            name: name.to_string(),
            attr_names: self.attr_names.clone(),
            dict: self.dict.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| rows.iter().map(|&t| c[t]).collect())
                .collect(),
            n: rows.len(),
        }
    }

    /// Iterates over all `(tuple, attr, value)` cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = (usize, AttrId, ValueId)> + '_ {
        (0..self.n).flat_map(move |t| (0..self.n_attrs()).map(move |a| (t, a, self.columns[a][t])))
    }

    /// A 64-bit FNV-1a hash of the relation's full logical content:
    /// name, schema, the strings behind every interned value id, and
    /// every cell. Two relations loaded independently from byte-identical
    /// CSV (same file stem) hash equal; any difference in name, schema,
    /// values or row order changes the hash. This is the identity key
    /// for shared-context caches (`dbmined`'s LRU): it depends only on
    /// logical content, never on dictionary internals or load order of
    /// *other* relations.
    ///
    /// Defined by [`crate::ContentHasher`], which hashes cells row-major
    /// so the streaming chunked-ingest path ([`crate::shard`]) computes
    /// the identical hash without materializing the relation.
    pub fn content_hash(&self) -> u64 {
        let mut hasher = crate::hash::ContentHasher::new(&self.name, &self.attr_names);
        let mut row: Vec<Option<&str>> = Vec::with_capacity(self.n_attrs());
        for t in 0..self.n {
            row.clear();
            row.extend(self.columns.iter().map(|col| {
                let v = col[t];
                (v != NULL_VALUE).then(|| self.dict.string(v))
            }));
            hasher.push_row(&row);
        }
        hasher.finish()
    }

    /// The number of *distinct* value ids appearing anywhere in the relation
    /// (the paper's `d = |V|`).
    pub fn distinct_value_count(&self) -> usize {
        let mut seen = vec![false; self.dict.len()];
        let mut count = 0usize;
        for col in &self.columns {
            for &v in col {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                }
            }
        }
        count
    }
}

/// Incremental builder for [`Relation`].
///
/// ```
/// use dbmine_relation::RelationBuilder;
/// let mut b = RelationBuilder::new("people", &["Ename", "City", "Zip"]);
/// b.push_row(&[Some("Pat"), Some("Boston"), Some("02139")]);
/// b.push_row(&[Some("Pat"), Some("Boston"), Some("02138")]);
/// b.push_row(&[Some("Sal"), Some("Boston"), None]);
/// let rel = b.build();
/// assert_eq!(rel.n_tuples(), 3);
/// assert_eq!(rel.value_str(2, 2), "NULL");
/// // "Boston" is one global value shared by all three tuples:
/// assert_eq!(rel.value(0, 1), rel.value(2, 1));
/// ```
#[derive(Clone, Debug)]
pub struct RelationBuilder {
    name: String,
    attr_names: Vec<String>,
    dict: ValueDict,
    columns: Vec<Vec<ValueId>>,
    n: usize,
}

impl RelationBuilder {
    /// Starts a relation with the given attribute names.
    ///
    /// # Panics
    /// Panics if more than 64 attributes are requested (see [`AttrSet`]).
    pub fn new(name: &str, attr_names: &[&str]) -> Self {
        assert!(
            attr_names.len() <= MAX_ATTRS,
            "at most {MAX_ATTRS} attributes supported"
        );
        RelationBuilder {
            name: name.to_string(),
            attr_names: attr_names.iter().map(|s| s.to_string()).collect(),
            dict: ValueDict::new(),
            columns: vec![Vec::new(); attr_names.len()],
            n: 0,
        }
    }

    /// Appends one tuple; `None` cells become NULL.
    ///
    /// # Panics
    /// Panics if the row width differs from the schema width.
    pub fn push_row(&mut self, row: &[Option<&str>]) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        for (a, cell) in row.iter().enumerate() {
            let id = self.dict.intern_cell(*cell);
            self.columns[a].push(id);
        }
        self.n += 1;
    }

    /// Appends one tuple of owned strings (empty string stays a value;
    /// use [`RelationBuilder::push_row`] with `None` for NULLs).
    pub fn push_row_strs(&mut self, row: &[&str]) {
        let cells: Vec<Option<&str>> = row.iter().map(|s| Some(*s)).collect();
        self.push_row(&cells);
    }

    /// Number of tuples added so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if no tuples were added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Finishes the relation.
    pub fn build(self) -> Relation {
        Relation {
            name: self.name,
            attr_names: self.attr_names,
            dict: self.dict,
            columns: self.columns,
            n: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::paper::figure4;

    #[test]
    fn figure4_shape() {
        let r = figure4();
        assert_eq!(r.n_tuples(), 5);
        assert_eq!(r.n_attrs(), 3);
        assert_eq!(r.distinct_value_count(), 9); // a,w,y,z,1,2,p,r,x
    }

    #[test]
    fn values_and_strings() {
        let r = figure4();
        assert_eq!(r.value_str(0, 0), "a");
        assert_eq!(r.value_str(4, 2), "x");
        assert_eq!(r.value(2, 2), r.value(3, 2)); // both "x"
        assert_ne!(r.value(0, 2), r.value(1, 2)); // "p" vs "r"
    }

    #[test]
    fn projection_keeps_rows() {
        let r = figure4();
        let p = r.project([0, 2].into_iter().collect());
        assert_eq!(p.n_attrs(), 2);
        assert_eq!(p.n_tuples(), 5);
        assert_eq!(p.attr_names(), &["A".to_string(), "C".to_string()]);
        assert_eq!(p.value_str(0, 1), "p");
    }

    #[test]
    fn selection_keeps_columns() {
        let r = figure4();
        let s = r.select(&[2, 4], "sel");
        assert_eq!(s.n_tuples(), 2);
        assert_eq!(s.value_str(0, 0), "w");
        assert_eq!(s.value_str(1, 0), "z");
    }

    #[test]
    fn null_fraction_counts() {
        let mut b = RelationBuilder::new("t", &["X", "Y"]);
        b.push_row(&[Some("v"), None]);
        b.push_row(&[None, None]);
        let r = b.build();
        assert_eq!(r.null_fraction(0), 0.5);
        assert_eq!(r.null_fraction(1), 1.0);
        assert!(r.is_null(1, 0));
    }

    #[test]
    fn attr_lookup() {
        let r = figure4();
        assert_eq!(r.attr_id("B"), Some(1));
        assert_eq!(r.attr_id("nope"), None);
    }

    #[test]
    fn tuple_projected_order() {
        let r = figure4();
        let proj = r.tuple_projected(0, [2, 0].into_iter().collect());
        assert_eq!(proj.len(), 2);
        assert_eq!(r.dict().string(proj[0]), "a"); // attr order, not arg order
        assert_eq!(r.dict().string(proj[1]), "p");
    }

    #[test]
    fn cells_iterates_row_major() {
        let r = figure4();
        let cells: Vec<_> = r.cells().take(4).collect();
        assert_eq!(cells[0].0, 0);
        assert_eq!(cells[2].1, 2);
        assert_eq!(cells[3], (1, 0, r.value(1, 0)));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut b = RelationBuilder::new("t", &["X", "Y"]);
        b.push_row(&[Some("v")]);
    }

    #[test]
    fn project_distinct_with_rows_tracks_first_occurrences() {
        let r = figure4();
        // B,C pairs: (1,p) t0, (1,r) t1, (2,x) t2 (t3,t4 duplicate it).
        let (p, rows) = r.project_distinct_with_rows([1, 2].into_iter().collect(), "bc");
        assert_eq!(p.n_tuples(), 3);
        assert_eq!(rows, vec![0, 1, 2]);
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
        for (ci, &pt) in rows.iter().enumerate() {
            assert_eq!(p.value_str(ci, 0), r.value_str(pt as usize, 1));
            assert_eq!(p.value_str(ci, 1), r.value_str(pt as usize, 2));
        }
    }

    #[test]
    fn content_hash_is_deterministic_and_content_sensitive() {
        assert_eq!(figure4().content_hash(), figure4().content_hash());

        let build = |name: &str, attrs: &[&str], rows: &[&[&str]]| {
            let mut b = RelationBuilder::new(name, attrs);
            for row in rows {
                b.push_row_strs(row);
            }
            b.build()
        };
        let base = build("t", &["A", "B"], &[&["x", "y"], &["y", "x"]]);
        // Same content, independently built → equal; any perturbation of
        // name, schema, a cell, or row order → different.
        let same = build("t", &["A", "B"], &[&["x", "y"], &["y", "x"]]);
        assert_eq!(base.content_hash(), same.content_hash());
        let renamed = build("u", &["A", "B"], &[&["x", "y"], &["y", "x"]]);
        let reattr = build("t", &["A", "Z"], &[&["x", "y"], &["y", "x"]]);
        let recell = build("t", &["A", "B"], &[&["x", "y"], &["y", "z"]]);
        let reorder = build("t", &["A", "B"], &[&["y", "x"], &["x", "y"]]);
        for other in [&renamed, &reattr, &recell, &reorder] {
            assert_ne!(base.content_hash(), other.content_hash());
        }
    }

    #[test]
    fn content_hash_distinguishes_null_from_literal_null_string() {
        let mut a = RelationBuilder::new("t", &["X"]);
        a.push_row(&[None]);
        let mut b = RelationBuilder::new("t", &["X"]);
        b.push_row(&[Some("NULL")]);
        assert_ne!(a.build().content_hash(), b.build().content_hash());
    }
}
