//! The running-example relations from the paper, used throughout the
//! workspace as ground-truth fixtures.

use crate::relation::{Relation, RelationBuilder};

/// Figure 1: the Ename/City/Zip duplication example of the introduction.
pub fn figure1() -> Relation {
    let mut b = RelationBuilder::new("fig1", &["Ename", "City", "Zip"]);
    b.push_row_strs(&["Pat", "Boston", "02139"]);
    b.push_row_strs(&["Pat", "Boston", "02138"]);
    b.push_row_strs(&["Sal", "Boston", "02139"]);
    b.build()
}

/// Figure 4: the 5-tuple relation with perfect co-occurrence of
/// `{a,1}` (attributes A,B) and `{2,x}` (attributes B,C), and the exact
/// functional dependency `C → B`.
pub fn figure4() -> Relation {
    let mut b = RelationBuilder::new("fig4", &["A", "B", "C"]);
    b.push_row_strs(&["a", "1", "p"]);
    b.push_row_strs(&["a", "1", "r"]);
    b.push_row_strs(&["w", "2", "x"]);
    b.push_row_strs(&["y", "2", "x"]);
    b.push_row_strs(&["z", "2", "x"]);
    b.build()
}

/// Figure 5: Figure 4 with value `x` erroneously placed in the second
/// tuple (column C), so `{2,x}` no longer co-occur perfectly and `C → B`
/// becomes approximate. Note value `r` disappears: the universe has 8
/// values.
pub fn figure5() -> Relation {
    let mut b = RelationBuilder::new("fig5", &["A", "B", "C"]);
    b.push_row_strs(&["a", "1", "p"]);
    b.push_row_strs(&["a", "1", "x"]);
    b.push_row_strs(&["w", "2", "x"]);
    b.push_row_strs(&["y", "2", "x"]);
    b.push_row_strs(&["z", "2", "x"]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let r = figure1();
        assert_eq!((r.n_tuples(), r.n_attrs()), (3, 3));
        assert_eq!(r.distinct_value_count(), 5); // Pat, Sal, Boston, 02139, 02138
    }

    #[test]
    fn figure4_vs_figure5_universe() {
        assert_eq!(figure4().distinct_value_count(), 9);
        assert_eq!(figure5().distinct_value_count(), 8); // "r" gone
    }
}
