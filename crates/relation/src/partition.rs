//! Stripped partitions (the workhorse of TANE and of direct FD checks).
//!
//! The partition `π_X` groups tuples agreeing on the attribute set `X`.
//! A *stripped* partition drops singleton classes; its `error` value
//! `e(π) = ‖π‖ − |π|` (total tuples in non-singleton classes minus class
//! count) is what makes exact FD tests O(1) once partitions exist:
//! `X → A` holds iff `e(π_X) = e(π_{X∪A})`.

use crate::relation::{AttrId, Relation};

/// A stripped partition: equivalence classes of size ≥ 2, each a sorted
/// list of tuple indices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StrippedPartition {
    /// The non-singleton classes.
    pub classes: Vec<Vec<u32>>,
    /// Number of tuples of the underlying relation.
    pub n: usize,
}

/// Reusable workspace for the partition hot path.
///
/// [`StrippedPartition::product`] and [`StrippedPartition::g3_error`]
/// need O(n) probe tables; allocating them per call dominates the TANE
/// lattice walk, where every level performs thousands of products over
/// the same relation. A caller-owned scratch amortizes those tables
/// across calls: buffers only ever grow, and every operation restores
/// the "clean" invariant (probe entries back to the sentinel, slots
/// empty) before returning, so one scratch serves arbitrarily many
/// partitions — even of different relations.
///
/// Not `Clone`/`Sync` on purpose: each worker thread owns its own
/// scratch (see `dbmine_parallel::par_map_init`).
#[derive(Debug, Default)]
pub struct PartitionScratch {
    /// tuple → class id in the left partition (`u32::MAX` = singleton).
    /// Invariant between calls: all entries are `u32::MAX`.
    class_of: Vec<u32>,
    /// The TANE `S` table: per-left-class tuple buckets. Invariant
    /// between calls: every bucket is empty (capacity retained).
    slots: Vec<Vec<u32>>,
    /// Left-class ids touched while scanning one right class.
    touched: Vec<u32>,
    /// Per-tuple class ids of the refined partition (`g3_error`).
    ids: Vec<u32>,
    /// Per-refined-class tuple counts (`g3_error`). Invariant between
    /// calls: all entries are zero.
    counts: Vec<u32>,
}

impl PartitionScratch {
    /// A fresh workspace (buffers grow lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl StrippedPartition {
    /// The partition of a single attribute.
    ///
    /// # NULL semantics
    ///
    /// NULL cells intern to the single reserved value id
    /// (`crate::NULL_VALUE`), so **all NULLs of a column fall
    /// into one equivalence class** — NULL compares equal to NULL. This
    /// silently *strengthens* mined dependencies on NULL-heavy data: two
    /// tuples that are NULL in every attribute of `X` agree on `X`, so
    /// `X → A` can only hold if they also agree on `A`, and a column that
    /// is entirely NULL behaves as a constant (`∅ → A` holds). That is
    /// the semantics the paper's DBLP experiments rely on (Section 8.2:
    /// the journal attributes are constant-NULL inside the conference
    /// partition), but note it is the *opposite* of SQL, where
    /// `NULL = NULL` is unknown and such FDs would be vacuous instead.
    pub fn of_attr(rel: &Relation, a: AttrId) -> Self {
        // Value ids are dense (interned), so count-then-bucket over a
        // value-indexed table beats a HashMap group-by.
        let col = rel.column(a);
        let width = col.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        let mut count = vec![0u32; width];
        for &v in col {
            count[v as usize] += 1;
        }
        let mut slot = vec![u32::MAX; width];
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for (t, &v) in col.iter().enumerate() {
            if count[v as usize] >= 2 {
                let s = &mut slot[v as usize];
                if *s == u32::MAX {
                    *s = classes.len() as u32;
                    classes.push(Vec::with_capacity(count[v as usize] as usize));
                }
                classes[*s as usize].push(t as u32);
            }
        }
        // Classes emerge ordered by first tuple = lexicographic order
        // (they are disjoint and internally ascending); the sort is a
        // cheap presorted pass kept for the documented invariant.
        classes.sort_unstable();
        StrippedPartition {
            classes,
            n: rel.n_tuples(),
        }
    }

    /// The trivial partition of the empty attribute set: one class with
    /// every tuple (stripped only if `n < 2`).
    pub fn of_empty(n: usize) -> Self {
        let classes = if n >= 2 {
            vec![(0..n as u32).collect()]
        } else {
            Vec::new()
        };
        StrippedPartition { classes, n }
    }

    /// `‖π‖`: number of tuples covered by the stripped classes.
    pub fn covered(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Restricts this partition onto a tuple subset and renumbers it.
    ///
    /// `map[t]` is the new index of parent tuple `t`, or `u32::MAX` for
    /// tuples outside the subset; `child_n` is the subset size. Each
    /// class keeps only its surviving members (remapped), classes that
    /// shrink below 2 are stripped, and the result is re-sorted into the
    /// canonical lexicographic class order.
    ///
    /// When the subset is a `project_distinct_with_rows` row list over
    /// attributes that include `A`, the restriction of π_A *is* the
    /// child relation's π_A — two projected tuples agree on `A` exactly
    /// when their (first-occurrence) parent rows do. That identity is
    /// what lets a decomposition step derive its partitions from the
    /// parent context instead of rebuilding them (bit-identity is pinned
    /// by tests in `dbmine-context`).
    pub fn restrict_remap(&self, map: &[u32], child_n: usize) -> StrippedPartition {
        debug_assert_eq!(map.len(), self.n);
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for class in &self.classes {
            let kept: Vec<u32> = class
                .iter()
                .filter_map(|&t| {
                    let c = map[t as usize];
                    (c != u32::MAX).then_some(c)
                })
                .collect();
            if kept.len() >= 2 {
                let mut kept = kept;
                // A monotone map (the project_distinct case) leaves the
                // members presorted; sort anyway to keep the documented
                // ascending-members invariant for arbitrary maps.
                kept.sort_unstable();
                classes.push(kept);
            }
        }
        classes.sort_unstable();
        StrippedPartition {
            classes,
            n: child_n,
        }
    }

    /// The TANE error value `e(π) = ‖π‖ − |π|`.
    pub fn error(&self) -> usize {
        self.covered() - self.classes.len()
    }

    /// Number of equivalence classes of the *unstripped* partition
    /// (stripped classes plus singletons) — i.e. the distinct count of
    /// the projection.
    pub fn class_count(&self) -> usize {
        self.n - self.error()
    }

    /// True if the attribute set is a superkey (every class a singleton).
    pub fn is_key(&self) -> bool {
        self.classes.is_empty()
    }

    /// The product `π_X = π_self · π_other` (partition refinement).
    ///
    /// Convenience wrapper over [`Self::product_with`] that pays for a
    /// fresh [`PartitionScratch`]; hot loops should own a scratch and
    /// call `product_with` directly.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        self.product_with(other, &mut PartitionScratch::default())
    }

    /// The product `π_X = π_self · π_other` via the canonical TANE
    /// probe-table algorithm (`T`/`S` tables), with all probe state in
    /// the caller-owned `scratch`: zero hashing, zero per-call
    /// allocation beyond the result itself.
    ///
    /// Output is bit-identical to [`Self::product_reference`] (pinned by
    /// regression and property tests).
    pub fn product_with(
        &self,
        other: &StrippedPartition,
        scratch: &mut PartitionScratch,
    ) -> StrippedPartition {
        dbmine_telemetry::counter_add(dbmine_telemetry::Counter::PartitionProducts, 1);
        debug_assert_eq!(self.n, other.n);
        if scratch.class_of.len() < self.n {
            scratch.class_of.resize(self.n, u32::MAX);
        }
        if scratch.slots.len() < self.classes.len() {
            scratch.slots.resize_with(self.classes.len(), Vec::new);
        }
        // T table: tuple → class id in `self`.
        for (cid, class) in self.classes.iter().enumerate() {
            for &t in class {
                scratch.class_of[t as usize] = cid as u32;
            }
        }
        // For each class of `other`, bucket its tuples into the S table
        // by their `self` class; buckets inherit `other`'s ascending
        // tuple order, so each emitted class is already sorted.
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for class in &other.classes {
            scratch.touched.clear();
            for &t in class {
                let cid = scratch.class_of[t as usize];
                if cid != u32::MAX {
                    let slot = &mut scratch.slots[cid as usize];
                    if slot.is_empty() {
                        scratch.touched.push(cid);
                    }
                    slot.push(t);
                }
            }
            for &cid in &scratch.touched {
                let slot = &mut scratch.slots[cid as usize];
                if slot.len() >= 2 {
                    classes.push(slot.clone());
                }
                slot.clear();
            }
        }
        // Restore the clean-scratch invariant (touch only what we set).
        for class in &self.classes {
            for &t in class {
                scratch.class_of[t as usize] = u32::MAX;
            }
        }
        // Disjoint classes: unstable sort is total, matching the
        // reference's lexicographic class order.
        classes.sort_unstable();
        StrippedPartition { classes, n: self.n }
    }

    /// The original product implementation (probe table + per-class
    /// `HashMap`), kept as the oracle for [`Self::product_with`]'s
    /// regression and property tests.
    pub fn product_reference(&self, other: &StrippedPartition) -> StrippedPartition {
        debug_assert_eq!(self.n, other.n);
        // Map tuple → class id in `self` (usize::MAX for singletons).
        let mut class_of = vec![usize::MAX; self.n];
        for (cid, class) in self.classes.iter().enumerate() {
            for &t in class {
                class_of[t as usize] = cid;
            }
        }
        // For each class of `other`, bucket its tuples by their `self` class.
        let mut buckets: std::collections::HashMap<usize, Vec<u32>> = Default::default();
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for class in &other.classes {
            buckets.clear();
            for &t in class {
                let cid = class_of[t as usize];
                if cid != usize::MAX {
                    buckets.entry(cid).or_default().push(t);
                }
            }
            classes.extend(buckets.drain().map(|(_, c)| c).filter(|c| c.len() >= 2));
        }
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        StrippedPartition { classes, n: self.n }
    }

    /// Per-tuple class ids of this partition (singletons get unique
    /// negative-space ids ≥ `classes.len()`), used for `g3` error
    /// computation.
    pub fn class_ids(&self) -> Vec<u32> {
        let mut ids = Vec::new();
        self.class_ids_into(&mut ids);
        ids
    }

    /// [`Self::class_ids`] into a caller-owned buffer (cleared and
    /// refilled; no allocation once the buffer has capacity `n`).
    pub fn class_ids_into(&self, ids: &mut Vec<u32>) {
        ids.clear();
        ids.resize(self.n, u32::MAX);
        for (cid, class) in self.classes.iter().enumerate() {
            for &t in class {
                ids[t as usize] = cid as u32;
            }
        }
        let mut next = self.classes.len() as u32;
        for id in ids.iter_mut() {
            if *id == u32::MAX {
                *id = next;
                next += 1;
            }
        }
    }

    /// The `g3` error of `X → A` where `self = π_X` and `refined = π_{X∪A}`:
    /// the minimum fraction of tuples to delete for the dependency to
    /// hold exactly.
    ///
    /// Convenience wrapper over [`Self::g3_error_with`]; hot loops
    /// should reuse a [`PartitionScratch`].
    pub fn g3_error(&self, refined: &StrippedPartition) -> f64 {
        self.g3_error_with(refined, &mut PartitionScratch::default())
    }

    /// [`Self::g3_error`] with all probe state in the caller-owned
    /// `scratch` (dense count tables instead of a per-class `HashMap`).
    pub fn g3_error_with(
        &self,
        refined: &StrippedPartition,
        scratch: &mut PartitionScratch,
    ) -> f64 {
        dbmine_telemetry::counter_add(dbmine_telemetry::Counter::G3Evals, 1);
        if self.n == 0 {
            return 0.0;
        }
        debug_assert_eq!(self.n, refined.n);
        refined.class_ids_into(&mut scratch.ids);
        // Refined class ids live in 0..n, so a dense n-wide count table
        // suffices; only touched entries are reset.
        if scratch.counts.len() < self.n {
            scratch.counts.resize(self.n, 0);
        }
        let mut removed = 0usize;
        for class in &self.classes {
            scratch.touched.clear();
            let mut keep = 1u32;
            for &t in class {
                let id = scratch.ids[t as usize];
                let c = &mut scratch.counts[id as usize];
                *c += 1;
                if *c == 1 {
                    scratch.touched.push(id);
                }
                keep = keep.max(*c);
            }
            removed += class.len() - keep as usize;
            for &id in &scratch.touched {
                scratch.counts[id as usize] = 0;
            }
        }
        removed as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::figure4;
    use crate::relation::RelationBuilder;

    #[test]
    fn single_attr_partitions_figure4() {
        let rel = figure4();
        // A = a,a,w,y,z → one class {0,1}.
        let pa = StrippedPartition::of_attr(&rel, 0);
        assert_eq!(pa.classes, vec![vec![0, 1]]);
        assert_eq!(pa.error(), 1);
        assert_eq!(pa.class_count(), 4);
        // B = 1,1,2,2,2 → classes {0,1}, {2,3,4}.
        let pb = StrippedPartition::of_attr(&rel, 1);
        assert_eq!(pb.classes.len(), 2);
        assert_eq!(pb.error(), 3);
        assert_eq!(pb.class_count(), 2);
        // C = p,r,x,x,x → one class {2,3,4}.
        let pc = StrippedPartition::of_attr(&rel, 2);
        assert_eq!(pc.classes, vec![vec![2, 3, 4]]);
    }

    #[test]
    fn product_refines() {
        let rel = figure4();
        let pb = StrippedPartition::of_attr(&rel, 1);
        let pc = StrippedPartition::of_attr(&rel, 2);
        let pbc = pb.product(&pc);
        // BC classes: {(1,p)},{(1,r)},{(2,x)×3} → stripped: {2,3,4}.
        assert_eq!(pbc.classes, vec![vec![2, 3, 4]]);
        // Product is symmetric here.
        assert_eq!(pc.product(&pb), pbc);
    }

    #[test]
    fn exact_fd_via_error_equality() {
        let rel = figure4();
        let pc = StrippedPartition::of_attr(&rel, 2);
        let pb = StrippedPartition::of_attr(&rel, 1);
        let pbc = pb.product(&pc);
        // C → B holds: e(π_C) == e(π_BC).
        assert_eq!(pc.error(), pbc.error());
        // B → C does not: e(π_B) != e(π_BC).
        assert_ne!(pb.error(), pbc.error());
    }

    #[test]
    fn empty_set_partition() {
        let p = StrippedPartition::of_empty(5);
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.error(), 4);
        assert_eq!(p.class_count(), 1);
        assert!(StrippedPartition::of_empty(1).classes.is_empty());
    }

    #[test]
    fn key_detection() {
        let mut b = RelationBuilder::new("t", &["K", "V"]);
        b.push_row_strs(&["k1", "v"]);
        b.push_row_strs(&["k2", "v"]);
        let rel = b.build();
        assert!(StrippedPartition::of_attr(&rel, 0).is_key());
        assert!(!StrippedPartition::of_attr(&rel, 1).is_key());
    }

    #[test]
    fn g3_error_exact_is_zero() {
        let rel = figure4();
        let pc = StrippedPartition::of_attr(&rel, 2);
        let pb = StrippedPartition::of_attr(&rel, 1);
        let pbc = pb.product(&pc);
        assert_eq!(pc.g3_error(&pbc), 0.0);
    }

    #[test]
    fn g3_error_counts_minimum_removals() {
        // B → C in figure4: class {0,1} of B maps to p and r (keep 1,
        // remove 1); class {2,3,4} maps to x,x,x (remove 0). g3 = 1/5.
        let rel = figure4();
        let pb = StrippedPartition::of_attr(&rel, 1);
        let pc = StrippedPartition::of_attr(&rel, 2);
        let pbc = pb.product(&pc);
        assert!((pb.g3_error(&pbc) - 0.2).abs() < 1e-12);
        let _ = pc; // silence unused in this configuration
    }

    #[test]
    fn nulls_compare_equal_and_strengthen_fds() {
        // Pin the documented NULL semantics: every NULL of a column lands
        // in the same equivalence class.
        let mut b = RelationBuilder::new("n", &["X", "A"]);
        b.push_row(&[None, Some("v1")]); // t0: X is NULL
        b.push_row(&[None, Some("v1")]); // t1: X is NULL
        b.push_row(&[Some("x1"), Some("v2")]);
        b.push_row(&[Some("x2"), Some("v3")]);
        let rel = b.build();

        let px = StrippedPartition::of_attr(&rel, 0);
        assert_eq!(px.classes, vec![vec![0, 1]], "NULLs group together");

        // Because t0/t1 agree on X (both NULL) and on A, X → A holds …
        let pa = StrippedPartition::of_attr(&rel, 1);
        let pxa = px.product(&pa);
        assert_eq!(px.error(), pxa.error(), "X → A holds with equal NULLs");

        // … and an all-NULL column is a constant: ∅ → N holds.
        let mut b = RelationBuilder::new("c", &["N", "K"]);
        b.push_row(&[None, Some("k1")]);
        b.push_row(&[None, Some("k2")]);
        b.push_row(&[None, Some("k3")]);
        let rel = b.build();
        let pn = StrippedPartition::of_attr(&rel, 0);
        let pe = StrippedPartition::of_empty(rel.n_tuples());
        assert_eq!(pn.error(), pe.error(), "all-NULL column acts constant");
    }

    #[test]
    fn product_matches_reference_on_paper_relations() {
        // Bit-identical output: same classes, same order, same n.
        let mut scratch = PartitionScratch::new();
        for rel in [crate::paper::figure1(), figure4(), crate::paper::figure5()] {
            for a in 0..rel.n_attrs() {
                for b in 0..rel.n_attrs() {
                    let pa = StrippedPartition::of_attr(&rel, a);
                    let pb = StrippedPartition::of_attr(&rel, b);
                    assert_eq!(
                        pa.product_with(&pb, &mut scratch),
                        pa.product_reference(&pb),
                        "{} · {} on {}",
                        a,
                        b,
                        rel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_survives_mixed_relation_sizes() {
        // One scratch across partitions of different relations and
        // sizes: the clean-state invariant must hold between calls.
        let mut scratch = PartitionScratch::new();
        let small = figure4();
        let mut b = RelationBuilder::new("big", &["A", "B"]);
        for i in 0..100 {
            b.push_row_strs(&[&format!("a{}", i % 7), &format!("b{}", i % 3)]);
        }
        let big = b.build();
        for _ in 0..3 {
            for rel in [&small, &big] {
                let pa = StrippedPartition::of_attr(rel, 0);
                let pb = StrippedPartition::of_attr(rel, 1);
                assert_eq!(
                    pa.product_with(&pb, &mut scratch),
                    pa.product_reference(&pb)
                );
                let pab = pa.product_with(&pb, &mut scratch);
                let g3_scratch = pa.g3_error_with(&pab, &mut scratch);
                let g3_fresh = pa.g3_error(&pab);
                assert_eq!(g3_scratch, g3_fresh);
            }
        }
    }

    #[test]
    fn empty_partition_products() {
        let empty = StrippedPartition {
            classes: vec![],
            n: 5,
        };
        let full = StrippedPartition::of_empty(5);
        let mut scratch = PartitionScratch::new();
        assert_eq!(
            empty.product_with(&full, &mut scratch),
            empty.product_reference(&full)
        );
        assert_eq!(
            full.product_with(&empty, &mut scratch),
            full.product_reference(&empty)
        );
        assert!(full.product_with(&empty, &mut scratch).classes.is_empty());
    }

    #[test]
    fn class_ids_into_reuses_buffer() {
        let rel = figure4();
        let pb = StrippedPartition::of_attr(&rel, 1);
        let pc = StrippedPartition::of_attr(&rel, 2);
        let mut buf = Vec::new();
        pb.class_ids_into(&mut buf);
        assert_eq!(buf, pb.class_ids());
        pc.class_ids_into(&mut buf); // refill, not append
        assert_eq!(buf, pc.class_ids());
    }

    #[test]
    fn class_ids_are_consistent() {
        let rel = figure4();
        let pb = StrippedPartition::of_attr(&rel, 1);
        let ids = pb.class_ids();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[2], ids[3]);
        assert_ne!(ids[0], ids[2]);
    }

    #[test]
    fn restrict_remap_matches_fresh_build_on_projection() {
        let rel = figure4();
        // Project on {B, C}: distinct rows come from parent tuples 0,1,2.
        let attrs: crate::AttrSet = [1usize, 2].into_iter().collect();
        let (child, rows) = rel.project_distinct_with_rows(attrs, "bc");
        let mut map = vec![u32::MAX; rel.n_tuples()];
        for (ci, &pt) in rows.iter().enumerate() {
            map[pt as usize] = ci as u32;
        }
        for (ci, a) in attrs.iter().enumerate() {
            let derived =
                StrippedPartition::of_attr(&rel, a).restrict_remap(&map, child.n_tuples());
            let fresh = StrippedPartition::of_attr(&child, ci);
            assert_eq!(derived, fresh, "attr {a} restriction diverged");
        }
    }

    #[test]
    fn restrict_remap_drops_shrunk_classes_and_resorts() {
        // Partition {0,1},{2,3,4} over n=5; keep tuples {1,3,4} with a
        // deliberately non-monotone renumbering.
        let p = StrippedPartition {
            classes: vec![vec![0, 1], vec![2, 3, 4]],
            n: 5,
        };
        let mut map = vec![u32::MAX; 5];
        map[1] = 2;
        map[3] = 0;
        map[4] = 1;
        let r = p.restrict_remap(&map, 3);
        // {0,1} shrinks to one member → stripped; {2,3,4} → {0,1}.
        assert_eq!(r.classes, vec![vec![0, 1]]);
        assert_eq!(r.n, 3);
    }
}
