//! Incremental relation content hashing.
//!
//! [`ContentHasher`] is the **single definition** of the relation
//! content hash: [`crate::Relation::content_hash`] and the streaming
//! chunked-ingest path both drive it, so a relation loaded in memory and
//! the same CSV streamed chunk by chunk hash identically (pinned by
//! tests in `crate::shard`). That identity is what lets `dbmined`'s
//! `CtxCache` key out-of-core ingests the same way it keys in-memory
//! loads.
//!
//! The hash is 64-bit FNV-1a over the relation's *logical* content:
//!
//! 1. relation name, then a `0xff` separator;
//! 2. attribute count (u64 LE), then each attribute name + `0xff`;
//! 3. every cell in **row-major** order — a NULL-marker byte, a u32 LE
//!    length prefix, then the value string's bytes;
//! 4. at [`ContentHasher::finish`], the row count (u64 LE).
//!
//! Row-major cell order (rather than the column-major walk the
//! pre-sharding implementation used) is what makes the hash streamable:
//! a chunked reader sees whole rows, never whole columns. The row count
//! folds in at the end for the same reason — a streaming pass only
//! knows `n` once the input is exhausted. The hash depends only on
//! logical content, never on dictionary internals or the interning
//! order of other relations.

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Streaming FNV-1a hasher over a relation's logical content. See the
/// module docs for the exact byte layout.
#[derive(Clone, Debug)]
pub struct ContentHasher {
    h: u64,
    rows: u64,
}

impl ContentHasher {
    /// Starts a hash over a relation called `name` with the given
    /// schema. The header (name + attribute names) folds in immediately.
    pub fn new<S: AsRef<str>>(name: &str, attr_names: &[S]) -> Self {
        let mut hasher = ContentHasher {
            h: FNV_OFFSET,
            rows: 0,
        };
        hasher.eat(name.as_bytes());
        hasher.eat(&[0xff]);
        hasher.eat(&(attr_names.len() as u64).to_le_bytes());
        for attr in attr_names {
            hasher.eat(attr.as_ref().as_bytes());
            hasher.eat(&[0xff]);
        }
        hasher
    }

    /// Folds one tuple, cell by cell in schema order. `None` cells are
    /// NULL — hashed distinct from the literal string `"NULL"` via the
    /// marker byte.
    pub fn push_row<S: AsRef<str>>(&mut self, row: &[Option<S>]) {
        for cell in row {
            self.push_cell(cell.as_ref().map(AsRef::as_ref));
        }
        self.rows += 1;
    }

    /// Folds the row count and returns the hash.
    pub fn finish(self) -> u64 {
        let mut hasher = self;
        let rows = hasher.rows;
        hasher.eat(&rows.to_le_bytes());
        hasher.h
    }

    /// Rows folded so far.
    pub fn n_rows(&self) -> u64 {
        self.rows
    }

    fn push_cell(&mut self, cell: Option<&str>) {
        let s = cell.unwrap_or("NULL");
        self.eat(&[cell.is_none() as u8]);
        self.eat(&(s.len() as u32).to_le_bytes());
        self.eat(s.as_bytes());
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_and_one_shot_feeding_agree() {
        // The hash must be a pure function of the content, not of how
        // the rows were batched into push_row calls (one call per row is
        // the only batching, but the header/finish split must not leak).
        let mut a = ContentHasher::new("t", &["A", "B"]);
        a.push_row(&[Some("x"), None]);
        a.push_row(&[Some("y"), Some("z")]);
        let mut b = ContentHasher::new("t", &["A", "B"]);
        b.push_row(&[Some("x"), None::<&str>]);
        b.push_row(&[Some("y"), Some("z")]);
        assert_eq!(a.n_rows(), 2);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn header_cells_and_count_all_matter() {
        let base = {
            let mut h = ContentHasher::new("t", &["A"]);
            h.push_row(&[Some("x")]);
            h.finish()
        };
        let renamed = {
            let mut h = ContentHasher::new("u", &["A"]);
            h.push_row(&[Some("x")]);
            h.finish()
        };
        let reattr = {
            let mut h = ContentHasher::new("t", &["B"]);
            h.push_row(&[Some("x")]);
            h.finish()
        };
        let recell = {
            let mut h = ContentHasher::new("t", &["A"]);
            h.push_row(&[Some("y")]);
            h.finish()
        };
        let doubled = {
            let mut h = ContentHasher::new("t", &["A"]);
            h.push_row(&[Some("x")]);
            h.push_row(&[Some("x")]);
            h.finish()
        };
        for other in [renamed, reattr, recell, doubled] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn null_distinct_from_literal_null() {
        let mut a = ContentHasher::new("t", &["X"]);
        a.push_row(&[None::<&str>]);
        let mut b = ContentHasher::new("t", &["X"]);
        b.push_row(&[Some("NULL")]);
        assert_ne!(a.finish(), b.finish());
    }
}
