//! Out-of-core sharded CSV ingest.
//!
//! [`crate::csv::read_relation`] buffers the whole file and builds the
//! whole columnar relation before any mining starts — fine at paper
//! scale, hopeless at 10⁷ tuples. This module ingests the same CSV in
//! **bounded-memory chunks** while producing *bitwise* the same derived
//! quantities as the in-memory path:
//!
//! * [`ShardedRelation::scan_csv`] — pass 1 over the stream: resolves
//!   the header (same `col{i}`/width semantics as `read_relation`),
//!   interns every cell into the global [`ValueDict`] **in row-major
//!   order** (so ids match a [`crate::RelationBuilder`] load exactly),
//!   counts tuples, and folds the incremental [`ContentHasher`]. The
//!   resulting hash equals [`crate::Relation::content_hash`] of the
//!   in-memory load — the identity key `dbmined`'s context LRU uses —
//!   without ever holding more than the dictionary and one record.
//! * [`ShardedRelation::chunks_from`] — later passes: re-reads the
//!   stream and yields [`RelationChunk`]s of at most `chunk_tuples`
//!   rows in the relation's interned columnar layout. Peak memory is
//!   the dictionary plus one chunk, independent of the relation size.
//! * [`tuple_mutual_information_chunks`] — folds `I(T;V)` of the tuple
//!   view over a chunk stream with exactly the operation sequence of
//!   `TupleRows::mutual_information`, so the result is bit-identical.
//!
//! The record scanner ([`CsvRecordStream`]) drives the same
//! `parse_record` state machine as the in-memory reader over a rolling
//! buffer: a record is accepted only once it is newline-terminated or
//! the input is exhausted, so buffer-boundary placement — even inside a
//! quoted embedded newline — can never change what is parsed.

use crate::attrset::AttrSet;
use crate::csv::{header_names, normalize_row, parse_record, CsvError, Field};
use crate::dict::{ValueDict, ValueId, NULL_VALUE};
use crate::hash::ContentHasher;
use crate::matrix::{qualified_row, qualified_stride};
use crate::partition::StrippedPartition;
use crate::spill::{SpillWriter, StoreChunks, StoreError, StoreFooter};
use crate::stats::{ColumnProfile, ProjectionCounter};
use dbmine_infotheory::{entropy, entropy_of, SparseDist};
use std::io::Read;
use std::path::{Path, PathBuf};

/// Default ingest chunk size, in tuples. 65 536 rows of interned `u32`
/// cells keep a chunk in the low megabytes for paper-scale schemas
/// while amortizing per-chunk costs at 10⁷-tuple scale.
pub const DEFAULT_CHUNK_TUPLES: usize = 65_536;

/// Read granularity of the rolling buffer, in bytes.
const READ_BLOCK: usize = 64 * 1024;

/// Consumed-prefix length beyond which the rolling buffer is compacted.
const COMPACT_THRESHOLD: usize = 4 * READ_BLOCK;

/// Streams logical CSV records from a reader through a rolling buffer,
/// parsing with the exact `parse_record` state machine of the in-memory
/// reader. Memory use is bounded by the longest single record, not the
/// input length.
pub struct CsvRecordStream<R: Read> {
    reader: R,
    buf: Vec<u8>,
    pos: usize,
    line: usize,
    eof: bool,
}

impl<R: Read> CsvRecordStream<R> {
    /// Wraps a reader positioned at the start of the CSV text.
    pub fn new(reader: R) -> Self {
        CsvRecordStream {
            reader,
            buf: Vec::new(),
            pos: 0,
            line: 1,
            eof: false,
        }
    }

    /// The 1-based line number of the *next* unparsed position (the same
    /// counter the in-memory reader reports in errors).
    pub fn line(&self) -> usize {
        self.line
    }

    fn fill(&mut self) -> Result<(), CsvError> {
        let mut block = [0u8; READ_BLOCK];
        let got = self.reader.read(&mut block)?;
        if got == 0 {
            self.eof = true;
        } else {
            self.buf.extend_from_slice(&block[..got]);
        }
        Ok(())
    }

    /// The next logical record, or `None` at end of input.
    pub fn next_record(&mut self) -> Result<Option<Vec<Field>>, CsvError> {
        loop {
            let mut try_pos = self.pos;
            let mut try_line = self.line;
            match parse_record(&self.buf, &mut try_pos, &mut try_line) {
                Ok(None) => {
                    if self.eof {
                        return Ok(None);
                    }
                    self.fill()?;
                }
                Ok(Some(rec)) => {
                    // Only accept a record the in-memory parser would
                    // also have produced: one ending at a newline, or
                    // one ending at true end-of-input. A parse that
                    // merely ran out of *buffer* re-runs after a refill
                    // (the state machine is deterministic on prefixes,
                    // so re-parsing from the record start is exact).
                    let newline_terminated =
                        try_pos > 0 && try_pos <= self.buf.len() && self.buf[try_pos - 1] == b'\n';
                    if newline_terminated || self.eof {
                        self.pos = try_pos;
                        self.line = try_line;
                        if self.pos >= COMPACT_THRESHOLD {
                            self.buf.drain(..self.pos);
                            self.pos = 0;
                        }
                        return Ok(Some(rec));
                    }
                    self.fill()?;
                }
                Err(e) => {
                    // E.g. an open quote at the buffer end: an error only
                    // if no more input can close it.
                    if self.eof {
                        return Err(e);
                    }
                    self.fill()?;
                }
            }
        }
    }
}

/// One ingest chunk: up to `chunk_tuples` consecutive rows in the
/// relation's interned columnar layout.
#[derive(Clone, Debug)]
pub struct RelationChunk {
    /// Index of this chunk's first tuple in the whole relation.
    pub start: usize,
    /// Column-major cell ids: `columns[a][t]` is the value of local row
    /// `t` in attribute `a`. All columns have equal length.
    pub columns: Vec<Vec<ValueId>>,
}

impl RelationChunk {
    /// Rows in this chunk.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Attributes per row.
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// The value id of local row `t`, attribute `a`.
    pub fn value(&self, t: usize, a: usize) -> ValueId {
        self.columns[a][t]
    }

    /// Iterator over local row `t`'s cell values in attribute order.
    pub fn row_values(&self, t: usize) -> impl Iterator<Item = ValueId> + '_ {
        self.columns.iter().map(move |col| col[t])
    }
}

/// The bounded-memory view of a CSV relation: schema, global value
/// dictionary, tuple count and content hash — everything *except* the
/// cell matrix, which is re-streamed in chunks on demand.
///
/// Built by one streaming pass ([`ShardedRelation::scan_csv`] /
/// [`ShardedRelation::scan_csv_path`]); subsequent passes re-read the
/// source via [`ShardedRelation::chunks`] / [`chunks_from`]. The
/// dictionary is interned in the same row-major order as an in-memory
/// [`crate::RelationBuilder`] load, so every id — and every quantity
/// derived from ids — matches the in-memory path bitwise.
///
/// [`chunks_from`]: ShardedRelation::chunks_from
#[derive(Clone, Debug)]
pub struct ShardedRelation {
    name: String,
    attr_names: Vec<String>,
    dict: ValueDict,
    n: usize,
    content_hash: u64,
    chunk_tuples: usize,
    backing: Backing,
}

/// What a chunk pass re-reads: nothing (reader-fed scans), the scanned
/// CSV file, or a binary shard store ([`crate::spill`]).
#[derive(Clone, Debug)]
enum Backing {
    None,
    Csv(PathBuf),
    Store {
        path: PathBuf,
        /// File offset one past the last block (= the footer offset),
        /// from the validated store metadata.
        data_len: u64,
    },
}

impl ShardedRelation {
    /// Pass 1 over a CSV stream: header, dictionary, tuple count and
    /// content hash, holding only the dictionary and one record in
    /// memory. `chunk_tuples` sets the granularity of later chunk
    /// passes (`0` means [`DEFAULT_CHUNK_TUPLES`]).
    pub fn scan_csv<R: Read>(reader: R, name: &str, chunk_tuples: usize) -> Result<Self, CsvError> {
        let mut stream = CsvRecordStream::new(reader);
        let header = match stream.next_record()? {
            Some(h) => h,
            None => return Err(CsvError::Empty),
        };
        let attr_names = header_names(header)?;
        let mut dict = ValueDict::new();
        let mut hasher = ContentHasher::new(name, &attr_names);
        let mut n = 0usize;
        while let Some(rec) = stream.next_record()? {
            let Some(rec) = normalize_row(rec, attr_names.len(), stream.line())? else {
                continue;
            };
            hasher.push_row(&rec);
            for cell in &rec {
                dict.intern_cell(cell.as_deref());
            }
            n += 1;
        }
        Ok(ShardedRelation {
            name: name.to_string(),
            attr_names,
            dict,
            n,
            content_hash: hasher.finish(),
            chunk_tuples: if chunk_tuples == 0 {
                DEFAULT_CHUNK_TUPLES
            } else {
                chunk_tuples
            },
            backing: Backing::None,
        })
    }

    /// [`ShardedRelation::scan_csv`] over a file, remembering the path so
    /// [`ShardedRelation::chunks`] can re-open it for later passes. The
    /// file stem becomes the relation name, as in
    /// [`crate::csv::read_relation_path`]; errors carry the file path.
    pub fn scan_csv_path(path: impl AsRef<Path>, chunk_tuples: usize) -> Result<Self, CsvError> {
        let path = path.as_ref();
        let name = Self::stem_name(path);
        let file = std::fs::File::open(path).map_err(|e| CsvError::from(e).in_file(path))?;
        let mut sharded = Self::scan_csv(file, &name, chunk_tuples).map_err(|e| e.in_file(path))?;
        sharded.backing = Backing::Csv(path.to_path_buf());
        Ok(sharded)
    }

    fn stem_name(path: &Path) -> String {
        path.file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("relation")
            .to_string()
    }

    /// One fused pass: [`ShardedRelation::scan_csv`] that *also* spills
    /// every chunk into the binary shard store at `store_path` as it
    /// scans — the CSV is tokenized and dictionary-hashed exactly once,
    /// and every later chunk pass decodes the store instead
    /// ([`crate::spill`]). Row-major interning means each value id is
    /// final the moment its chunk is written, so no second encoding pass
    /// is needed. The returned relation is store-backed.
    pub fn scan_csv_spill<R: Read>(
        reader: R,
        name: &str,
        chunk_tuples: usize,
        store_path: impl AsRef<Path>,
    ) -> Result<Self, CsvError> {
        let store_path = store_path.as_ref();
        let chunk_tuples = if chunk_tuples == 0 {
            DEFAULT_CHUNK_TUPLES
        } else {
            chunk_tuples
        };
        let mut stream = CsvRecordStream::new(reader);
        let header = match stream.next_record()? {
            Some(h) => h,
            None => return Err(CsvError::Empty),
        };
        let attr_names = header_names(header)?;
        let m = attr_names.len();
        let mut dict = ValueDict::new();
        let mut hasher = ContentHasher::new(name, &attr_names);
        let mut n = 0usize;
        let mut writer = SpillWriter::create(store_path)?;
        let mut columns: Vec<Vec<ValueId>> = vec![Vec::with_capacity(chunk_tuples.min(1 << 16)); m];
        let mut buffered = 0usize;
        while let Some(rec) = stream.next_record()? {
            let Some(rec) = normalize_row(rec, m, stream.line())? else {
                continue;
            };
            hasher.push_row(&rec);
            for (a, cell) in rec.iter().enumerate() {
                columns[a].push(dict.intern_cell(cell.as_deref()));
            }
            n += 1;
            buffered += 1;
            if buffered == chunk_tuples {
                let full = std::mem::replace(
                    &mut columns,
                    vec![Vec::with_capacity(chunk_tuples.min(1 << 16)); m],
                );
                writer.write_chunk(&RelationChunk {
                    start: n - buffered,
                    columns: full,
                })?;
                buffered = 0;
            }
        }
        if buffered > 0 {
            writer.write_chunk(&RelationChunk {
                start: n - buffered,
                columns: std::mem::take(&mut columns),
            })?;
        }
        let content_hash = hasher.finish();
        writer.finish(&StoreFooter {
            name,
            attr_names: &attr_names,
            chunk_tuples,
            n_tuples: n,
            content_hash,
            dict: &dict,
        })?;
        // Re-open through the validated metadata path so the backing
        // carries the verified footer offset.
        Self::open_store(store_path)
    }

    /// [`ShardedRelation::scan_csv_spill`] over a CSV file (file stem as
    /// relation name, errors carrying the source path).
    pub fn scan_csv_path_spill(
        path: impl AsRef<Path>,
        chunk_tuples: usize,
        store_path: impl AsRef<Path>,
    ) -> Result<Self, CsvError> {
        let path = path.as_ref();
        let name = Self::stem_name(path);
        let file = std::fs::File::open(path).map_err(|e| CsvError::from(e).in_file(path))?;
        Self::scan_csv_spill(file, &name, chunk_tuples, store_path).map_err(|e| e.in_file(path))
    }

    /// Spills this relation's chunks into a binary shard store at
    /// `store_path` by running one chunk pass over the current backing,
    /// and returns the store-backed equivalent. For CSV-backed scans
    /// prefer the fused [`ShardedRelation::scan_csv_path_spill`], which
    /// avoids this extra re-parse entirely.
    pub fn spill_to(&self, store_path: impl AsRef<Path>) -> Result<ShardedRelation, CsvError> {
        let store_path = store_path.as_ref();
        let mut writer = SpillWriter::create(store_path)?;
        for chunk in self.chunks()? {
            writer.write_chunk(&chunk?)?;
        }
        writer.finish(&StoreFooter {
            name: &self.name,
            attr_names: &self.attr_names,
            chunk_tuples: self.chunk_tuples,
            n_tuples: self.n,
            content_hash: self.content_hash,
            dict: &self.dict,
        })?;
        Self::open_store(store_path)
    }

    /// Opens an existing binary shard store: validates magic, version,
    /// trailer, footer checksum and counts, rebuilds the frozen
    /// dictionary, and returns the store-backed relation. Later chunk
    /// passes decode blocks directly — zero tokenization, zero hashing.
    pub fn open_store(path: impl AsRef<Path>) -> Result<Self, CsvError> {
        let path = path.as_ref();
        let meta = crate::spill::read_meta(path).map_err(|e| CsvError::from(e).in_file(path))?;
        Ok(ShardedRelation {
            name: meta.name,
            attr_names: meta.attr_names,
            dict: meta.dict,
            n: meta.n_tuples,
            content_hash: meta.content_hash,
            chunk_tuples: meta.chunk_tuples,
            backing: Backing::Store {
                path: path.to_path_buf(),
                data_len: meta.data_len,
            },
        })
    }

    /// Fully materializes the in-memory [`crate::Relation`] from the
    /// current backing (one chunk pass). The result is indistinguishable
    /// from loading the original CSV with
    /// [`crate::csv::read_relation_path`] — same ids, same content hash.
    pub fn materialize(&self) -> Result<crate::Relation, CsvError> {
        let m = self.n_attrs();
        let mut columns: Vec<Vec<ValueId>> = (0..m).map(|_| Vec::with_capacity(self.n)).collect();
        for chunk in self.chunks()? {
            let chunk = chunk?;
            for (a, col) in chunk.columns.iter().enumerate() {
                columns[a].extend_from_slice(col);
            }
        }
        Ok(crate::Relation::from_parts(
            self.name.clone(),
            self.attr_names.clone(),
            self.dict.clone(),
            columns,
            self.n,
        ))
    }

    /// Recomputes the content hash from the backing's chunks and checks
    /// it against the one recorded at scan time. For store-backed
    /// relations this is the end-to-end integrity check: a store whose
    /// blocks decode cleanly but describe different content (e.g. a
    /// forged or mismatched footer hash) yields a typed
    /// [`StoreError::ContentHashMismatch`].
    pub fn verify_content(&self) -> Result<(), CsvError> {
        let mut hasher = ContentHasher::new(&self.name, &self.attr_names);
        let mut row: Vec<Option<&str>> = Vec::with_capacity(self.n_attrs());
        for chunk in self.chunks()? {
            let chunk = chunk?;
            for t in 0..chunk.n_rows() {
                row.clear();
                row.extend(
                    chunk
                        .row_values(t)
                        .map(|v| (v != NULL_VALUE).then(|| self.dict.string(v))),
                );
                hasher.push_row(&row);
            }
        }
        let found = hasher.finish();
        if found != self.content_hash {
            return Err(CsvError::Store(StoreError::ContentHashMismatch {
                expected: self.content_hash,
                found,
            }));
        }
        Ok(())
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute names, in schema order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Number of attributes `m`.
    pub fn n_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Number of tuples `n`.
    pub fn n_tuples(&self) -> usize {
        self.n
    }

    /// The global value dictionary (frozen after the scan pass).
    pub fn dict(&self) -> &ValueDict {
        &self.dict
    }

    /// The content hash — bit-identical to
    /// [`crate::Relation::content_hash`] of the same CSV loaded in
    /// memory under the same name.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Chunk granularity, in tuples.
    pub fn chunk_tuples(&self) -> usize {
        self.chunk_tuples
    }

    /// The backing file (CSV or store) chunk passes re-open, if any.
    pub fn path(&self) -> Option<&Path> {
        match &self.backing {
            Backing::None => None,
            Backing::Csv(p) | Backing::Store { path: p, .. } => Some(p),
        }
    }

    /// True when chunk passes decode a binary shard store instead of
    /// re-parsing CSV.
    pub fn is_store_backed(&self) -> bool {
        matches!(self.backing, Backing::Store { .. })
    }

    /// The validated footer offset of a store backing (used by the block
    /// reader to bound block reads).
    pub(crate) fn store_data_len(&self) -> Option<u64> {
        match &self.backing {
            Backing::Store { data_len, .. } => Some(*data_len),
            _ => None,
        }
    }

    /// Number of chunks a full pass yields: `ceil(n / chunk_tuples)`.
    pub fn n_chunks(&self) -> usize {
        self.n.div_ceil(self.chunk_tuples)
    }

    /// A chunk pass over a fresh reader of the **same** CSV bytes the
    /// scan pass consumed. The header is re-validated against the
    /// scanned schema; any cell absent from the frozen dictionary means
    /// the input changed between passes and yields a typed error.
    pub fn chunks_from<R: Read>(&self, reader: R) -> CsvChunks<'_, R> {
        CsvChunks {
            sharded: self,
            stream: CsvRecordStream::new(reader),
            header_done: false,
            emitted: 0,
            failed: false,
        }
    }

    /// A chunk pass re-opening the backing file: a CSV re-parse for
    /// [`ShardedRelation::scan_csv_path`] scans, a zero-parse block
    /// decode for store-backed relations ([`ShardedRelation::open_store`]
    /// / [`ShardedRelation::scan_csv_path_spill`]). Errors carry the
    /// backing file's path; a reader-fed scan with no backing file is a
    /// recoverable [`CsvError::NoBacking`], not a crash.
    pub fn chunks(&self) -> Result<Chunks<'_>, CsvError> {
        match &self.backing {
            Backing::None => Err(CsvError::NoBacking),
            Backing::Csv(path) => {
                let file =
                    std::fs::File::open(path).map_err(|e| CsvError::from(e).in_file(path))?;
                Ok(Chunks::Csv {
                    inner: self.chunks_from(file),
                    path: path.clone(),
                })
            }
            Backing::Store { path, .. } => Ok(Chunks::Store(Box::new(
                StoreChunks::open(self, path).map_err(|e| CsvError::from(e).in_file(path))?,
            ))),
        }
    }
}

/// A chunk pass over whatever backs the relation: CSV re-parse or store
/// block decode. Both arms yield bit-identical [`RelationChunk`]s.
pub enum Chunks<'a> {
    /// Re-parsing the scanned CSV file.
    Csv {
        inner: CsvChunks<'a, std::fs::File>,
        path: PathBuf,
    },
    /// Decoding a binary shard store. Boxed: the store reader carries a
    /// 1 MiB buffered reader and is much larger than the CSV arm.
    Store(Box<StoreChunks<'a>>),
}

impl Iterator for Chunks<'_> {
    type Item = Result<RelationChunk, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            Chunks::Csv { inner, path } => {
                inner.next().map(|r| r.map_err(|e| e.in_file(path.clone())))
            }
            Chunks::Store(inner) => inner.next(),
        }
    }
}

/// A relation plus a way to open fresh chunk passes over it — the
/// abstraction that makes multi-pass consumers (`limbo::phase1_csv*`)
/// agnostic to whether chunks come from a CSV re-parse, a binary shard
/// store, or an arbitrary re-openable reader.
pub trait ChunkSource {
    /// One chunk pass (an iterator of [`RelationChunk`] results).
    type Pass<'a>: Iterator<Item = Result<RelationChunk, CsvError>>
    where
        Self: 'a;

    /// The scanned relation metadata (schema, dictionary, counts).
    fn relation(&self) -> &ShardedRelation;

    /// Opens a fresh pass over all chunks, starting at tuple 0.
    fn open_pass(&self) -> Result<Self::Pass<'_>, CsvError>;
}

impl ChunkSource for ShardedRelation {
    type Pass<'a>
        = Chunks<'a>
    where
        Self: 'a;

    fn relation(&self) -> &ShardedRelation {
        self
    }

    fn open_pass(&self) -> Result<Chunks<'_>, CsvError> {
        self.chunks()
    }
}

/// A [`ChunkSource`] over an arbitrary re-openable reader: `open` is
/// called once per pass and must yield the same CSV bytes the scan pass
/// consumed.
pub struct ReaderChunkSource<'s, F> {
    sharded: &'s ShardedRelation,
    open: F,
}

impl<'s, F> ReaderChunkSource<'s, F> {
    /// Pairs a scanned relation with a reader factory.
    pub fn new(sharded: &'s ShardedRelation, open: F) -> Self {
        ReaderChunkSource { sharded, open }
    }
}

impl<'s, R, F> ChunkSource for ReaderChunkSource<'s, F>
where
    R: Read,
    F: Fn() -> Result<R, CsvError>,
{
    type Pass<'a>
        = CsvChunks<'s, R>
    where
        Self: 'a;

    fn relation(&self) -> &ShardedRelation {
        self.sharded
    }

    fn open_pass(&self) -> Result<CsvChunks<'s, R>, CsvError> {
        Ok(self.sharded.chunks_from((self.open)()?))
    }
}

fn changed_input_error(line: Option<usize>, detail: String) -> CsvError {
    CsvError::ChangedInput { line, detail }
}

/// Iterator over [`RelationChunk`]s of a [`ShardedRelation`] source.
/// Yields `ceil(n / chunk_tuples)` chunks, each holding at most
/// `chunk_tuples` rows; stops (with an error) if the stream disagrees
/// with the scanned schema, dictionary or tuple count.
pub struct CsvChunks<'a, R: Read> {
    sharded: &'a ShardedRelation,
    stream: CsvRecordStream<R>,
    header_done: bool,
    emitted: usize,
    failed: bool,
}

impl<R: Read> CsvChunks<'_, R> {
    fn read_header(&mut self) -> Result<(), CsvError> {
        let header = match self.stream.next_record()? {
            Some(h) => h,
            None => return Err(CsvError::Empty),
        };
        let names = header_names(header)?;
        if names != self.sharded.attr_names {
            return Err(changed_input_error(
                Some(1),
                format!(
                    "header is {names:?}, scanned schema was {:?}",
                    self.sharded.attr_names
                ),
            ));
        }
        self.header_done = true;
        Ok(())
    }

    fn next_chunk(&mut self) -> Result<Option<RelationChunk>, CsvError> {
        if !self.header_done {
            self.read_header()?;
        }
        let m = self.sharded.n_attrs();
        let cap = self.sharded.chunk_tuples;
        let mut columns: Vec<Vec<ValueId>> = vec![Vec::with_capacity(cap.min(1 << 16)); m];
        let mut rows = 0usize;
        while rows < cap {
            // The record's own 1-based line: the stream counter points
            // at the next unparsed position, so capture it before the
            // parse consumes the record (and its trailing newline).
            let record_line = self.stream.line();
            let Some(rec) = self.stream.next_record()? else {
                break;
            };
            let Some(rec) = normalize_row(rec, m, record_line)? else {
                continue;
            };
            for (a, cell) in rec.iter().enumerate() {
                let id = match cell.as_deref() {
                    None => NULL_VALUE,
                    Some(s) => self.sharded.dict.lookup(s).ok_or_else(|| {
                        changed_input_error(
                            Some(record_line),
                            format!("value {s:?} not in scanned dictionary"),
                        )
                    })?,
                };
                columns[a].push(id);
            }
            rows += 1;
        }
        if rows == 0 {
            if self.emitted != self.sharded.n {
                return Err(changed_input_error(
                    Some(self.stream.line()),
                    format!(
                        "stream ended after {} tuples, scan saw {}",
                        self.emitted, self.sharded.n
                    ),
                ));
            }
            return Ok(None);
        }
        let start = self.emitted;
        self.emitted += rows;
        if self.emitted > self.sharded.n {
            return Err(changed_input_error(
                Some(self.stream.line()),
                format!("stream has more than the {} scanned tuples", self.sharded.n),
            ));
        }
        Ok(Some(RelationChunk { start, columns }))
    }
}

impl<R: Read> Iterator for CsvChunks<'_, R> {
    type Item = Result<RelationChunk, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_chunk() {
            Ok(Some(chunk)) => Some(Ok(chunk)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// The tuple-view mutual information `I(T;V)` folded over a chunk
/// stream — bit-identical to
/// `TupleRows::build(&relation).mutual_information()` for the same
/// content, because both fold the same conditional rows in the same
/// order through the same marginal/entropy operations. Peak memory is
/// the marginal accumulator plus one chunk.
pub fn tuple_mutual_information_chunks<I>(
    sharded: &ShardedRelation,
    chunks: I,
) -> Result<f64, CsvError>
where
    I: IntoIterator<Item = Result<RelationChunk, CsvError>>,
{
    let m = sharded.n_attrs();
    let n = sharded.n_tuples();
    if n == 0 {
        return Ok(0.0);
    }
    let stride = qualified_stride(sharded.dict().len(), m);
    let mass = 1.0 / m as f64;
    let pv = 1.0 / n as f64;
    let mut marginal = SparseDist::new();
    let mut h_cond = 0.0;
    for chunk in chunks {
        let chunk = chunk?;
        for t in 0..chunk.n_rows() {
            let cond = qualified_row(stride, mass, chunk.row_values(t));
            marginal = SparseDist::weighted_sum(&marginal, 1.0, &cond, pv);
            h_cond += pv * entropy_of(&cond);
        }
    }
    Ok((entropy_of(&marginal) - h_cond).max(0.0))
}

/// Every single-attribute stripped partition `π_A`, built by a chunked
/// group-by over the global frozen dictionary — bit-identical to
/// `StrippedPartition::of_attr` for every attribute, because both
/// bucket tuples in global order into classes created at each value's
/// first occurrence.
///
/// Two chunk passes: one to count per-column value frequencies (so
/// singleton classes are never allocated, exactly like `of_attr`), one
/// to bucket. Peak memory is two dense `u32` tables per column plus the
/// partitions themselves — never the `n × m` cell matrix.
pub fn attr_partitions_chunks<S: ChunkSource>(
    source: &S,
) -> Result<Vec<StrippedPartition>, CsvError> {
    let sharded = source.relation();
    let m = sharded.n_attrs();
    let n = sharded.n_tuples();
    // Pass 1: per-column value frequencies (tables grow to each
    // column's own max id + 1, mirroring `of_attr`'s width).
    let mut count: Vec<Vec<u32>> = vec![Vec::new(); m];
    for chunk in source.open_pass()? {
        let chunk = chunk?;
        for (a, col) in chunk.columns.iter().enumerate() {
            let table = &mut count[a];
            for &v in col {
                let v = v as usize;
                if v >= table.len() {
                    table.resize(v + 1, 0);
                }
                table[v] += 1;
            }
        }
    }
    // Pass 2: bucket tuples of shared values in global tuple order.
    let mut slot: Vec<Vec<u32>> = count.iter().map(|t| vec![u32::MAX; t.len()]).collect();
    let mut classes: Vec<Vec<Vec<u32>>> = vec![Vec::new(); m];
    for chunk in source.open_pass()? {
        let chunk = chunk?;
        for (a, col) in chunk.columns.iter().enumerate() {
            for (local, &v) in col.iter().enumerate() {
                let c = count[a][v as usize];
                if c >= 2 {
                    let s = &mut slot[a][v as usize];
                    if *s == u32::MAX {
                        *s = classes[a].len() as u32;
                        classes[a].push(Vec::with_capacity(c as usize));
                    }
                    classes[a][*s as usize].push((chunk.start + local) as u32);
                }
            }
        }
    }
    Ok(classes
        .into_iter()
        .map(|mut classes| {
            // First-tuple order is already lexicographic; the sort is
            // the same cheap presorted pass `of_attr` keeps for the
            // documented invariant.
            classes.sort_unstable();
            StrippedPartition { classes, n }
        })
        .collect())
}

/// Per-column profiles (distinct, NULL fraction, entropy) folded over
/// one chunk pass — bit-identical to `stats::profile_columns` /
/// the single-attribute `stats::projection_stats`, because each
/// column's counts accumulate in the same first-occurrence order the
/// in-memory [`ProjectionCounter`] fold uses.
pub fn column_profiles_chunks<S: ChunkSource>(source: &S) -> Result<Vec<ColumnProfile>, CsvError> {
    let sharded = source.relation();
    let m = sharded.n_attrs();
    let n = sharded.n_tuples();
    // Slot table per column: value id → first-occurrence slot.
    let mut slot: Vec<Vec<u32>> = vec![Vec::new(); m];
    let mut counts: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut nulls = vec![0usize; m];
    for chunk in source.open_pass()? {
        let chunk = chunk?;
        for (a, col) in chunk.columns.iter().enumerate() {
            let slot = &mut slot[a];
            let counts = &mut counts[a];
            for &v in col {
                if v == NULL_VALUE {
                    nulls[a] += 1;
                }
                let v = v as usize;
                if v >= slot.len() {
                    slot.resize(v + 1, u32::MAX);
                }
                let s = &mut slot[v];
                if *s == u32::MAX {
                    *s = counts.len() as u32;
                    counts.push(1);
                } else {
                    counts[*s as usize] += 1;
                }
            }
        }
    }
    Ok((0..m)
        .map(|a| ColumnProfile {
            name: sharded.attr_names[a].clone(),
            distinct: counts[a].len(),
            null_fraction: if n == 0 {
                0.0
            } else {
                nulls[a] as f64 / n as f64
            },
            entropy: if n == 0 {
                0.0
            } else {
                let nf = n as f64;
                entropy(counts[a].iter().map(|&c| c as f64 / nf))
            },
        })
        .collect())
}

/// Distinct count and bag-semantics entropy of the projection on
/// `attrs`, folded over one chunk pass — bit-identical to
/// `stats::projection_stats`, which drives the same
/// [`ProjectionCounter`] with the same keys in the same global tuple
/// order.
pub fn projection_stats_chunks<S: ChunkSource>(
    source: &S,
    attrs: AttrSet,
) -> Result<(usize, f64), CsvError> {
    let n = source.relation().n_tuples();
    let mut counter = ProjectionCounter::new();
    for chunk in source.open_pass()? {
        let chunk = chunk?;
        for t in 0..chunk.n_rows() {
            counter.observe(attrs.iter().map(|a| chunk.value(t, a)).collect());
        }
    }
    Ok((counter.distinct(), counter.entropy(n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_relation;
    use crate::matrix::TupleRows;

    /// A reader that dribbles bytes out in fixed-size drips, forcing the
    /// rolling buffer to refill at arbitrary (and adversarial) offsets.
    struct Drip<'a> {
        data: &'a [u8],
        pos: usize,
        step: usize,
    }

    impl Read for Drip<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let take = self.step.min(out.len()).min(self.data.len() - self.pos);
            out[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
            self.pos += take;
            Ok(take)
        }
    }

    fn drip(data: &str, step: usize) -> Drip<'_> {
        Drip {
            data: data.as_bytes(),
            pos: 0,
            step,
        }
    }

    const SAMPLE: &str = "A,B,C\n\
        a,w,p\n\
        a,w,r\n\
        w,1,\"x,1\"\n\
        \"multi\nline\",2,x\n\
        \n\
        z,2,x\n";

    fn in_memory(csv: &str, name: &str) -> crate::Relation {
        read_relation(csv.as_bytes(), name).unwrap()
    }

    #[test]
    fn scan_matches_in_memory_load_for_every_drip_size() {
        let rel = in_memory(SAMPLE, "t");
        for step in [1, 2, 3, 5, 7, 64, 4096] {
            let s = ShardedRelation::scan_csv(drip(SAMPLE, step), "t", 2).unwrap();
            assert_eq!(s.n_tuples(), rel.n_tuples(), "step={step}");
            assert_eq!(s.attr_names(), rel.attr_names());
            assert_eq!(s.dict().len(), rel.dict().len());
            assert_eq!(s.content_hash(), rel.content_hash(), "step={step}");
        }
    }

    #[test]
    fn chunks_reproduce_the_columnar_relation() {
        let rel = in_memory(SAMPLE, "t");
        for chunk_tuples in [1, 2, 3, 100] {
            let s = ShardedRelation::scan_csv(drip(SAMPLE, 3), "t", chunk_tuples).unwrap();
            let mut seen = 0usize;
            for chunk in s.chunks_from(SAMPLE.as_bytes()) {
                let chunk = chunk.unwrap();
                assert_eq!(chunk.start, seen);
                assert!(chunk.n_rows() <= chunk_tuples);
                for t in 0..chunk.n_rows() {
                    for a in 0..chunk.n_attrs() {
                        assert_eq!(
                            chunk.value(t, a),
                            rel.value(seen + t, a),
                            "chunk_tuples={chunk_tuples} t={} a={a}",
                            seen + t
                        );
                    }
                }
                seen += chunk.n_rows();
            }
            assert_eq!(seen, rel.n_tuples());
            assert_eq!(s.n_chunks(), rel.n_tuples().div_ceil(chunk_tuples.max(1)));
        }
    }

    #[test]
    fn streaming_mi_is_bit_identical_to_tuple_rows() {
        let rel = in_memory(SAMPLE, "t");
        let reference = TupleRows::build(&rel).mutual_information();
        for chunk_tuples in [1, 2, 3, 100] {
            let s = ShardedRelation::scan_csv(SAMPLE.as_bytes(), "t", chunk_tuples).unwrap();
            let mi = tuple_mutual_information_chunks(&s, s.chunks_from(drip(SAMPLE, 5))).unwrap();
            assert_eq!(
                mi.to_bits(),
                reference.to_bits(),
                "chunk_tuples={chunk_tuples}"
            );
        }
    }

    #[test]
    fn dictionary_ids_match_builder_interning_order() {
        // Row-major interning must assign the exact ids RelationBuilder
        // does — ids are load-bearing for bitwise-equal derived views.
        let rel = in_memory(SAMPLE, "t");
        let s = ShardedRelation::scan_csv(SAMPLE.as_bytes(), "t", 10).unwrap();
        for id in 0..rel.dict().len() {
            assert_eq!(s.dict().string(id as u32), rel.dict().string(id as u32));
        }
    }

    #[test]
    fn hash_depends_on_name_like_in_memory_path() {
        let a = ShardedRelation::scan_csv(SAMPLE.as_bytes(), "t", 10).unwrap();
        let b = ShardedRelation::scan_csv(SAMPLE.as_bytes(), "u", 10).unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(b.content_hash(), in_memory(SAMPLE, "u").content_hash());
    }

    #[test]
    fn single_column_blank_lines_are_rows_here_too() {
        let csv = "A\nx\n\ny\n";
        let rel = in_memory(csv, "t");
        let s = ShardedRelation::scan_csv(csv.as_bytes(), "t", 2).unwrap();
        assert_eq!(s.n_tuples(), 3);
        assert_eq!(s.content_hash(), rel.content_hash());
        let rows: usize = s
            .chunks_from(csv.as_bytes())
            .map(|c| c.unwrap().n_rows())
            .sum();
        assert_eq!(rows, 3);
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        for csv in ["A,B\r\n1,2\r\n3,4", "A,B\n1,2\n3,4"] {
            let rel = in_memory(csv, "t");
            for step in [1, 4, 1000] {
                let s = ShardedRelation::scan_csv(drip(csv, step), "t", 1).unwrap();
                assert_eq!(s.n_tuples(), 2);
                assert_eq!(s.content_hash(), rel.content_hash());
            }
        }
    }

    #[test]
    fn errors_match_in_memory_reader() {
        assert!(matches!(
            ShardedRelation::scan_csv("".as_bytes(), "t", 1),
            Err(CsvError::Empty)
        ));
        assert!(matches!(
            ShardedRelation::scan_csv("A,B\n1\n".as_bytes(), "t", 1),
            Err(CsvError::RaggedRow {
                expected: 2,
                got: 1,
                ..
            })
        ));
        assert!(matches!(
            ShardedRelation::scan_csv("A\n\"oops\n".as_bytes(), "t", 1),
            Err(CsvError::UnterminatedQuote { .. })
        ));
        let wide: String = format!(
            "{}\n",
            (0..65)
                .map(|i| format!("c{i}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        assert!(matches!(
            ShardedRelation::scan_csv(wide.as_bytes(), "t", 1),
            Err(CsvError::TooManyAttrs { got: 65, max: 64 })
        ));
    }

    #[test]
    fn changed_input_between_passes_is_detected() {
        let s = ShardedRelation::scan_csv(SAMPLE.as_bytes(), "t", 10).unwrap();
        // New value the frozen dictionary has never seen.
        let tampered = SAMPLE.replace("z,2,x", "NEW,2,x");
        let err = s
            .chunks_from(tampered.as_bytes())
            .find_map(Result::err)
            .expect("tampered value must error");
        assert!(err.to_string().contains("changed between scan"));
        // Changed header.
        let reheadered = SAMPLE.replace("A,B,C", "A,B,D");
        let err = s
            .chunks_from(reheadered.as_bytes())
            .find_map(Result::err)
            .expect("tampered header must error");
        assert!(err.to_string().contains("changed between scan"));
        // Truncated stream (fewer tuples than scanned).
        let truncated = &SAMPLE[..SAMPLE.len() - "z,2,x\n".len()];
        let err = s
            .chunks_from(truncated.as_bytes())
            .find_map(Result::err)
            .expect("truncated stream must error");
        assert!(err.to_string().contains("ended after"));
    }

    #[test]
    fn path_backed_scan_rechunks_from_disk() {
        let dir = std::env::temp_dir().join("dbmine_shard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        let s = ShardedRelation::scan_csv_path(&path, 2).unwrap();
        assert_eq!(s.name(), "sample");
        let rel = in_memory(SAMPLE, "sample");
        assert_eq!(s.content_hash(), rel.content_hash());
        let rows: usize = s.chunks().unwrap().map(|c| c.unwrap().n_rows()).sum();
        assert_eq!(rows, rel.n_tuples());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunk_pass_errors_name_the_file_and_line() {
        let dir = std::env::temp_dir().join("dbmine_shard_errctx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("ctx_{}.csv", std::process::id()));
        std::fs::write(&path, "A,B\na,1\nb,2\nc,3\n").unwrap();
        let s = ShardedRelation::scan_csv_path(&path, 2).unwrap();

        // The input changes between passes: a cell at line 3 no longer
        // resolves in the frozen dictionary. The error must point a
        // human at the exact file and 1-based line.
        std::fs::write(&path, "A,B\na,1\nMUTATED,2\nc,3\n").unwrap();
        let err = s
            .chunks()
            .unwrap()
            .find_map(Result::err)
            .expect("changed input must error");
        let msg = err.to_string();
        assert!(msg.contains(&path.display().to_string()), "no path: {msg}");
        assert!(msg.contains("line 3:"), "no line number: {msg}");

        // A header change is reported at line 1.
        std::fs::write(&path, "A,Z\na,1\nb,2\nc,3\n").unwrap();
        let msg = s
            .chunks()
            .unwrap()
            .find_map(Result::err)
            .expect("changed header must error")
            .to_string();
        assert!(msg.contains("line 1:"), "no header line: {msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_fed_scan_chunk_pass_is_typed_error() {
        // A scan from a plain reader has nothing to re-open: every
        // chunk-pass entry point must surface a recoverable
        // `NoBacking`, not a crash.
        let s = ShardedRelation::scan_csv(SAMPLE.as_bytes(), "t", 2).unwrap();
        assert!(matches!(s.chunks(), Err(CsvError::NoBacking)));
        assert!(matches!(s.materialize(), Err(CsvError::NoBacking)));
        assert!(matches!(s.verify_content(), Err(CsvError::NoBacking)));
        let dir = std::env::temp_dir().join("dbmine_nobacking_test");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join(format!("nb_{}.dbss", std::process::id()));
        assert!(matches!(s.spill_to(&store), Err(CsvError::NoBacking)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunk_folds_match_in_memory_builds() {
        use crate::matrix::ValueIndex;
        use crate::stats;

        let rel = in_memory(SAMPLE, "t");
        for chunk_tuples in [1, 2, 3, 100] {
            let s = ShardedRelation::scan_csv(SAMPLE.as_bytes(), "t", chunk_tuples).unwrap();
            let src = ReaderChunkSource::new(&s, || Ok(SAMPLE.as_bytes()));

            let parts = attr_partitions_chunks(&src).unwrap();
            assert_eq!(parts.len(), rel.n_attrs());
            for (a, part) in parts.iter().enumerate() {
                assert_eq!(
                    part,
                    &StrippedPartition::of_attr(&rel, a),
                    "π_{a} chunk_tuples={chunk_tuples}"
                );
            }

            let profiles = column_profiles_chunks(&src).unwrap();
            assert_eq!(profiles, stats::profile_columns(&rel));

            for attrs in [
                AttrSet::EMPTY,
                AttrSet::single(1),
                [0usize, 2].into_iter().collect(),
                rel.all_attrs(),
            ] {
                let (d, h) = projection_stats_chunks(&src, attrs).unwrap();
                assert_eq!(d, stats::projection_distinct(&rel, attrs));
                assert_eq!(
                    h.to_bits(),
                    stats::projection_entropy(&rel, attrs).to_bits(),
                    "H(π) chunk_tuples={chunk_tuples} attrs={attrs:?}"
                );
            }

            let tr = TupleRows::from_chunks(
                s.dict().len(),
                s.n_attrs(),
                s.n_tuples(),
                src.open_pass().unwrap(),
            )
            .unwrap();
            let mem_tr = TupleRows::build(&rel);
            assert_eq!(tr.len(), mem_tr.len());
            assert_eq!(
                tr.mutual_information().to_bits(),
                mem_tr.mutual_information().to_bits()
            );

            let vi = ValueIndex::from_chunks(s.dict().len(), src.open_pass().unwrap()).unwrap();
            let mem_vi = ValueIndex::build(&rel);
            assert_eq!(vi.values(), mem_vi.values());
            for i in 0..vi.len() {
                assert_eq!(vi.occurrences(i), mem_vi.occurrences(i));
                assert_eq!(vi.o_row(i), mem_vi.o_row(i));
            }
            assert_eq!(
                vi.mutual_information().to_bits(),
                mem_vi.mutual_information().to_bits()
            );
        }
    }

    #[test]
    fn record_stream_survives_long_records_and_compaction() {
        // A value far larger than the read block exercises refill-retry
        // and compaction; content must still round-trip exactly.
        let big = "v".repeat(3 * READ_BLOCK);
        let csv = format!("A,B\n{big},w\nx,y\n");
        let rel = in_memory(&csv, "t");
        let s = ShardedRelation::scan_csv(csv.as_bytes(), "t", 1).unwrap();
        assert_eq!(s.n_tuples(), 2);
        assert_eq!(s.content_hash(), rel.content_hash());
        assert_eq!(s.dict().len(), rel.dict().len());
    }
}
