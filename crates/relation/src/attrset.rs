//! Compact sets of attribute ids.
//!
//! Relations in this workspace have at most 64 attributes (the paper's
//! largest has 19), so an attribute set is a single `u64` bitmask. These
//! sets are the currency of FD mining (LHS/RHS of dependencies, agree
//! sets) and of FD-RANK (merge participants).

use std::fmt;

/// Maximum number of attributes supported by [`AttrSet`].
pub const MAX_ATTRS: usize = 64;

/// A set of attribute ids `0..64`, stored as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u64);

impl AttrSet {
    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// The set `{attr}`.
    pub fn single(attr: usize) -> Self {
        debug_assert!(attr < MAX_ATTRS);
        AttrSet(1u64 << attr)
    }

    /// The full set `{0, …, m-1}`.
    pub fn full(m: usize) -> Self {
        assert!(m <= MAX_ATTRS, "at most {MAX_ATTRS} attributes supported");
        if m == MAX_ATTRS {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << m) - 1)
        }
    }

    /// Raw bitmask accessor (useful as a dense map key).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds from a raw bitmask.
    pub fn from_bits(bits: u64) -> Self {
        AttrSet(bits)
    }

    /// True if the set contains `attr`.
    pub fn contains(self, attr: usize) -> bool {
        debug_assert!(attr < MAX_ATTRS);
        self.0 & (1u64 << attr) != 0
    }

    /// Inserts `attr`, returning the extended set.
    #[must_use]
    pub fn with(self, attr: usize) -> Self {
        debug_assert!(attr < MAX_ATTRS);
        AttrSet(self.0 | (1u64 << attr))
    }

    /// Removes `attr`, returning the reduced set.
    #[must_use]
    pub fn without(self, attr: usize) -> Self {
        debug_assert!(attr < MAX_ATTRS);
        AttrSet(self.0 & !(1u64 << attr))
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: Self) -> Self {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn minus(self, other: Self) -> Self {
        AttrSet(self.0 & !other.0)
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if `self ⊂ other` (strict).
    pub fn is_proper_subset_of(self, other: Self) -> bool {
        self.is_subset_of(other) && self != other
    }

    /// True if the sets share no attribute.
    pub fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of attributes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the member attribute ids in increasing order.
    pub fn iter(self) -> AttrSetIter {
        AttrSetIter(self.0)
    }

    /// Renders as `{A, C}` given the attribute names.
    pub fn display(self, names: &[String]) -> String {
        let mut s = String::from("[");
        for (k, a) in self.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(names.get(a).map(String::as_str).unwrap_or("?"));
        }
        s.push(']');
        s
    }
}

impl FromIterator<usize> for AttrSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        iter.into_iter().fold(AttrSet::EMPTY, |acc, a| acc.with(a))
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the members of an [`AttrSet`].
pub struct AttrSetIter(u64);

impl Iterator for AttrSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let a = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(a)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert!(AttrSet::EMPTY.is_empty());
        let s = AttrSet::single(3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_set() {
        let s = AttrSet::full(5);
        assert_eq!(s.len(), 5);
        assert!((0..5).all(|a| s.contains(a)));
        assert!(!s.contains(5));
        assert_eq!(AttrSet::full(64).len(), 64);
    }

    #[test]
    fn with_without_roundtrip() {
        let s = AttrSet::EMPTY.with(2).with(7).without(2);
        assert_eq!(s, AttrSet::single(7));
    }

    #[test]
    fn set_algebra() {
        let a: AttrSet = [0, 1, 2].into_iter().collect();
        let b: AttrSet = [2, 3].into_iter().collect();
        assert_eq!(a.union(b), [0, 1, 2, 3].into_iter().collect());
        assert_eq!(a.intersect(b), AttrSet::single(2));
        assert_eq!(a.minus(b), [0, 1].into_iter().collect());
        assert!(AttrSet::single(2).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(a.is_proper_subset_of(a.with(5)));
        assert!(!a.is_proper_subset_of(a));
        assert!(a.is_disjoint(AttrSet::single(9)));
    }

    #[test]
    fn iter_in_order() {
        let s: AttrSet = [9, 1, 4].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn display_names() {
        let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        let s: AttrSet = [0, 2].into_iter().collect();
        assert_eq!(s.display(&names), "[A,C]");
    }

    #[test]
    #[should_panic]
    fn full_over_64_panics() {
        let _ = AttrSet::full(65);
    }
}
