//! The paper's probabilistic views of a relation (Sections 4 and 6).
//!
//! * **Tuple matrix `M`** (Figure 2): row `t` is the conditional
//!   distribution `p(V|t)` — uniform mass `1/m` on each (attribute,
//!   value) cell of the tuple, with `p(t) = 1/n`. Exposed by
//!   [`TupleRows`]; feature keys are attribute-qualified to honor the
//!   paper's assumption that attribute value sets are disjoint.
//! * **Value matrix `N`** (Figures 3/6, left): row `v` is `p(T|v)` —
//!   uniform mass `1/dv` on each of the `dv` tuples containing `v`, with
//!   `p(v) = 1/d`. Exposed by [`ValueIndex`].
//! * **Support matrix `O`** (Figure 6, right): `O[v, A]` is the number of
//!   occurrences of value `v` in attribute `A`. Stored as a sparse row per
//!   value in [`ValueIndex`], and aggregated under cluster merges by the
//!   ADCF machinery in `dbmine-limbo`.

use crate::csv::CsvError;
use crate::dict::ValueId;
use crate::relation::Relation;
use crate::shard::RelationChunk;
use dbmine_infotheory::{mutual_information, SparseDist};

/// The feature-key stride for attribute-qualified value keys: cell
/// `(a, v)` maps to feature `a · stride + v` with `stride = |dict|`.
/// This is the **single definition** shared by the in-memory tuple view
/// ([`TupleRows::build`]) and the chunked-ingest path ([`crate::shard`]),
/// so both produce bitwise-identical conditional rows.
///
/// # Panics
/// Panics if the qualified key space does not fit `u32` feature ids.
pub fn qualified_stride(dict_len: usize, m: usize) -> u32 {
    let stride = dict_len as u64;
    assert!(
        stride * m.max(1) as u64 <= u64::from(u32::MAX) + 1,
        "attribute-qualified value keys exceed the u32 feature space"
    );
    stride as u32
}

/// One tuple's conditional row `p(V|t)`: uniform `mass` on the qualified
/// feature key of each cell, in attribute order. `values` yields the
/// tuple's cell value ids for attributes `0..m`.
pub fn qualified_row(stride: u32, mass: f64, values: impl Iterator<Item = ValueId>) -> SparseDist {
    SparseDist::from_pairs(
        values
            .enumerate()
            .map(|(a, v)| (a as u32 * stride + v, mass))
            .collect(),
    )
}

/// The tuple view of a relation: `p(t) = 1/n`, `p(V|t)` uniform mass
/// `1/m` on each of the tuple's `m` cells.
///
/// The paper assumes the value sets of distinct attributes are disjoint
/// (Section 2 — values can always be made so by prefixing the attribute
/// name). The dictionary interns by string *globally*, so this view
/// qualifies every cell by its attribute when forming feature keys:
/// `Volume = "3"` and `Number = "3"` are different features, and — most
/// importantly — `BookTitle = NULL` and `Journal = NULL` are different
/// features. Without the qualification, every NULL in every attribute
/// collapses onto one shared feature, which drags NULL-containing tuples
/// of *different* types together and visibly corrupts tuple clustering
/// (duplicate detection, horizontal partitioning) on sparse relations
/// like DBLP.
#[derive(Clone, Debug)]
pub struct TupleRows {
    rows: Vec<SparseDist>,
    n: usize,
}

impl TupleRows {
    /// Builds `p(V|t)` for every tuple of `rel`, with attribute-qualified
    /// feature keys.
    pub fn build(rel: &Relation) -> Self {
        let m = rel.n_attrs();
        let stride = qualified_stride(rel.dict().len(), m);
        let mass = 1.0 / m as f64;
        let rows = (0..rel.n_tuples())
            .map(|t| qualified_row(stride, mass, (0..m).map(|a| rel.value(t, a))))
            .collect();
        TupleRows {
            rows,
            n: rel.n_tuples(),
        }
    }

    /// [`TupleRows::build`] folded over a chunk stream instead of a
    /// materialized relation: `dict_len`/`m`/`n` come from the scanned
    /// metadata (`crate::ShardedRelation`), and chunks must arrive in
    /// global tuple order. Chunk value ids are the global interned ids,
    /// so every conditional row — and everything derived from it — is
    /// bitwise the in-memory build.
    pub fn from_chunks<I>(dict_len: usize, m: usize, n: usize, chunks: I) -> Result<Self, CsvError>
    where
        I: IntoIterator<Item = Result<RelationChunk, CsvError>>,
    {
        let stride = qualified_stride(dict_len, m);
        let mass = 1.0 / m as f64;
        let mut rows = Vec::with_capacity(n);
        for chunk in chunks {
            let chunk = chunk?;
            for t in 0..chunk.n_rows() {
                rows.push(qualified_row(stride, mass, chunk.row_values(t)));
            }
        }
        Ok(TupleRows { rows, n })
    }

    /// Number of tuples `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the relation had no tuples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The prior `p(t) = 1/n`.
    pub fn prior(&self) -> f64 {
        1.0 / self.n as f64
    }

    /// The conditional row `p(V|t)`.
    pub fn row(&self, t: usize) -> &SparseDist {
        &self.rows[t]
    }

    /// Iterates `(p(t), p(V|t))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &SparseDist)> + Clone {
        let p = self.prior();
        self.rows.iter().map(move |r| (p, r))
    }

    /// The mutual information `I(T;V)` of the tuple view.
    pub fn mutual_information(&self) -> f64 {
        mutual_information(self.iter())
    }
}

/// The value view of a relation: occurrence lists, `p(T|v)` rows and the
/// support matrix `O`.
#[derive(Clone, Debug)]
pub struct ValueIndex {
    /// Distinct value ids present in the relation, in ascending id order.
    values: Vec<ValueId>,
    /// Per distinct value: sorted distinct tuple ids containing it.
    occurrences: Vec<Vec<u32>>,
    /// Per distinct value: sparse `O` row (attribute id → occurrence count).
    o_rows: Vec<SparseDist>,
}

impl ValueIndex {
    /// Scans the relation once and builds occurrence lists and `O` rows.
    pub fn build(rel: &Relation) -> Self {
        let universe = rel.dict().len();
        let mut occurrences: Vec<Vec<u32>> = vec![Vec::new(); universe];
        let mut attr_counts: Vec<Vec<(u32, f64)>> = vec![Vec::new(); universe];
        for (t, a, v) in rel.cells() {
            let occ = &mut occurrences[v as usize];
            if occ.last() != Some(&(t as u32)) {
                occ.push(t as u32);
            }
            attr_counts[v as usize].push((a as u32, 1.0));
        }
        Self::compact(universe, occurrences, attr_counts)
    }

    /// [`ValueIndex::build`] folded over a chunk stream: the same
    /// row-major cell walk (`universe` is the frozen dictionary length),
    /// so occurrence lists, `O` rows and everything derived from them
    /// are bitwise the in-memory build.
    pub fn from_chunks<I>(universe: usize, chunks: I) -> Result<Self, CsvError>
    where
        I: IntoIterator<Item = Result<RelationChunk, CsvError>>,
    {
        let mut occurrences: Vec<Vec<u32>> = vec![Vec::new(); universe];
        let mut attr_counts: Vec<Vec<(u32, f64)>> = vec![Vec::new(); universe];
        for chunk in chunks {
            let chunk = chunk?;
            for local in 0..chunk.n_rows() {
                let t = (chunk.start + local) as u32;
                for (a, v) in chunk.row_values(local).enumerate() {
                    let occ = &mut occurrences[v as usize];
                    if occ.last() != Some(&t) {
                        occ.push(t);
                    }
                    attr_counts[v as usize].push((a as u32, 1.0));
                }
            }
        }
        Ok(Self::compact(universe, occurrences, attr_counts))
    }

    fn compact(
        universe: usize,
        mut occurrences: Vec<Vec<u32>>,
        mut attr_counts: Vec<Vec<(u32, f64)>>,
    ) -> Self {
        let mut values = Vec::new();
        let mut occ_out = Vec::new();
        let mut o_out = Vec::new();
        for v in 0..universe {
            if occurrences[v].is_empty() {
                continue;
            }
            values.push(v as ValueId);
            occ_out.push(std::mem::take(&mut occurrences[v]));
            o_out.push(SparseDist::from_pairs(std::mem::take(&mut attr_counts[v])));
        }
        ValueIndex {
            values,
            occurrences: occ_out,
            o_rows: o_out,
        }
    }

    /// The number of distinct values `d = |V|`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the relation had no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The prior `p(v) = 1/d`.
    pub fn prior(&self) -> f64 {
        1.0 / self.values.len() as f64
    }

    /// The distinct value ids, ascending.
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// The value id of the `i`-th distinct value.
    pub fn value_id(&self, i: usize) -> ValueId {
        self.values[i]
    }

    /// Position of `v` among the distinct values, if present.
    pub fn position(&self, v: ValueId) -> Option<usize> {
        self.values.binary_search(&v).ok()
    }

    /// Sorted distinct tuples containing the `i`-th distinct value
    /// (`dv` = its length).
    pub fn occurrences(&self, i: usize) -> &[u32] {
        &self.occurrences[i]
    }

    /// The conditional row `p(T|v)` of the `i`-th distinct value: uniform
    /// over its `dv` containing tuples (matrix `N`, Figure 6 left).
    pub fn n_row(&self, i: usize) -> SparseDist {
        SparseDist::uniform(self.occurrences[i].iter().copied())
    }

    /// The sparse `O` row of the `i`-th distinct value: attribute id →
    /// number of occurrences (Figure 6 right).
    pub fn o_row(&self, i: usize) -> &SparseDist {
        &self.o_rows[i]
    }

    /// Iterates `(p(v), p(T|v))` pairs (allocates each row).
    pub fn n_rows(&self) -> Vec<(f64, SparseDist)> {
        let p = self.prior();
        (0..self.len()).map(|i| (p, self.n_row(i))).collect()
    }

    /// The mutual information `I(V;T)` of the value view.
    pub fn mutual_information(&self) -> f64 {
        let rows = self.n_rows();
        mutual_information(rows.iter().map(|(p, d)| (*p, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{figure1, figure4, figure5};
    use dbmine_infotheory::EPS;

    #[test]
    fn tuple_rows_match_figure2() {
        // Figure 2: each Figure-1 tuple row has mass 1/3 on its 3 values.
        let rel = figure1();
        let rows = TupleRows::build(&rel);
        assert_eq!(rows.len(), 3);
        let r0 = rows.row(0);
        assert_eq!(r0.support(), 3);
        for (_, w) in r0.iter() {
            assert!((w - 1.0 / 3.0).abs() < EPS);
        }
        // t1 and t2 share Pat and Boston but differ in zip.
        let shared: Vec<_> = r0
            .iter()
            .filter(|&(v, _)| rows.row(1).get(v) > 0.0)
            .collect();
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn tuple_rows_sum_to_one_with_duplicate_values() {
        // The same string in two attributes is two *different* features
        // (the paper's disjoint-value-sets assumption, Section 2); the
        // row still sums to 1.
        let mut b = crate::relation::RelationBuilder::new("t", &["X", "Y"]);
        b.push_row_strs(&["same", "same"]);
        let rel = b.build();
        let rows = TupleRows::build(&rel);
        assert_eq!(rows.row(0).support(), 2);
        assert!((rows.row(0).total() - 1.0).abs() < EPS);
    }

    #[test]
    fn tuple_rows_distinguish_nulls_per_attribute() {
        // A tuple NULL in X and one NULL in Y share *no* feature: NULL is
        // not one global value in the tuple view.
        let mut b = crate::relation::RelationBuilder::new("t", &["X", "Y"]);
        b.push_row(&[None, Some("v")]);
        b.push_row(&[Some("w"), None]);
        let rel = b.build();
        let rows = TupleRows::build(&rel);
        let shared = rows
            .row(0)
            .iter()
            .filter(|&(k, _)| rows.row(1).get(k) > 0.0)
            .count();
        assert_eq!(shared, 0);
        // ... while two tuples NULL in the same attribute do share it.
        let mut b2 = crate::relation::RelationBuilder::new("t", &["X", "Y"]);
        b2.push_row(&[None, Some("v")]);
        b2.push_row(&[None, Some("u")]);
        let rel2 = b2.build();
        let rows2 = TupleRows::build(&rel2);
        let shared2 = rows2
            .row(0)
            .iter()
            .filter(|&(k, _)| rows2.row(1).get(k) > 0.0)
            .count();
        assert_eq!(shared2, 1);
    }

    #[test]
    fn value_index_matches_figure6() {
        let rel = figure4();
        let idx = ValueIndex::build(&rel);
        assert_eq!(idx.len(), 9);
        // Value "x" appears in tuples t3, t4, t5 (0-based 2,3,4), attr C (=2) 3 times.
        let x = rel.dict().lookup("x").unwrap();
        let i = idx.position(x).unwrap();
        assert_eq!(idx.occurrences(i), &[2, 3, 4]);
        let n_row = idx.n_row(i);
        assert!((n_row.get(2) - 1.0 / 3.0).abs() < EPS);
        assert_eq!(idx.o_row(i).get(2), 3.0);
        assert_eq!(idx.o_row(i).get(0), 0.0);
        // Value "a": tuples t1,t2, attr A twice.
        let a = rel.dict().lookup("a").unwrap();
        let ia = idx.position(a).unwrap();
        assert_eq!(idx.occurrences(ia), &[0, 1]);
        assert_eq!(idx.o_row(ia).get(0), 2.0);
    }

    #[test]
    fn figure5_has_8_values_and_x_in_4_tuples() {
        let rel = figure5();
        let idx = ValueIndex::build(&rel);
        assert_eq!(idx.len(), 8);
        let x = rel.dict().lookup("x").unwrap();
        let i = idx.position(x).unwrap();
        assert_eq!(idx.occurrences(i), &[1, 2, 3, 4]);
        // p(T|x) = 1/4 each (Figure 8 merges this with p(T|2)).
        assert!((idx.n_row(i).get(1) - 0.25).abs() < EPS);
    }

    #[test]
    fn o_row_totals_equal_occurrence_multiplicity() {
        let rel = figure4();
        let idx = ValueIndex::build(&rel);
        // Σ_j O[v, Aj] equals the total number of cells holding v.
        let total: f64 = (0..idx.len()).map(|i| idx.o_row(i).total()).sum();
        assert_eq!(total as usize, rel.n_tuples() * rel.n_attrs());
    }

    #[test]
    fn mutual_information_positive_for_structured_data() {
        let rel = figure4();
        let t = TupleRows::build(&rel).mutual_information();
        let v = ValueIndex::build(&rel).mutual_information();
        assert!(t > 0.0);
        assert!(v > 0.0);
    }

    #[test]
    fn null_value_is_indexed_like_any_other() {
        let mut b = crate::relation::RelationBuilder::new("t", &["X", "Y"]);
        b.push_row(&[Some("v"), None]);
        b.push_row(&[None, None]);
        let rel = b.build();
        let idx = ValueIndex::build(&rel);
        let i = idx.position(crate::dict::NULL_VALUE).unwrap();
        assert_eq!(idx.occurrences(i), &[0, 1]); // distinct tuples
        assert_eq!(idx.o_row(i).total(), 3.0); // three NULL cells
    }
}
