//! Categorical relation substrate for database-structure mining.
//!
//! The paper's tools operate on a single relation of `n` tuples over `m`
//! categorical attributes (Section 4). This crate provides:
//!
//! * [`Relation`] — columnar storage with a **global** value dictionary:
//!   identical strings appearing in different attributes intern to the same
//!   value id, matching the paper's value universe `V = V1 ∪ … ∪ Vm`.
//!   (This is what lets the DBLP experiment discover that six attributes
//!   share the prevailing `NULL` value.)
//! * [`AttrSet`] — a bitset over attribute ids, shared by the FD miner and
//!   FD-RANK.
//! * [`matrix`] — the paper's probabilistic views of a relation:
//!   the tuple matrix `M` (`p(V|t)`), the value matrix `N` (`p(T|v)`) and
//!   the support matrix `O` (`O[v,A]` = occurrences of value `v` in
//!   attribute `A`), Figures 2, 3 and 6.
//! * [`stats`] — projection statistics (distinct counts, bag-semantics
//!   entropies) underlying the RAD/RTR duplication measures.
//! * [`partition`] — stripped partitions (`π_X`), the workhorse of TANE
//!   and of direct FD checks, cached per attribute by `dbmine-context`.
//! * [`csv`] — a small, dependency-free CSV reader/writer so relations can
//!   be loaded from real exports.

pub mod attrset;
pub mod csv;
pub mod dict;
pub mod hash;
pub mod matrix;
pub mod paper;
pub mod partition;
pub mod relation;
pub mod shard;
pub mod spill;
pub mod stats;

pub use attrset::AttrSet;
pub use dict::{ValueDict, ValueId, NULL_VALUE};
pub use hash::ContentHasher;
pub use matrix::{qualified_row, qualified_stride, TupleRows, ValueIndex};
pub use partition::{PartitionScratch, StrippedPartition};
pub use relation::{AttrId, Relation, RelationBuilder};
pub use shard::{
    attr_partitions_chunks, column_profiles_chunks, projection_stats_chunks,
    tuple_mutual_information_chunks, ChunkSource, Chunks, CsvChunks, CsvRecordStream,
    ReaderChunkSource, RelationChunk, ShardedRelation, DEFAULT_CHUNK_TUPLES,
};
pub use spill::{SpillWriter, StoreChunks, StoreError, StoreFooter};
