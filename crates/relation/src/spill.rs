//! Binary columnar shard store (`.dbss`) — spill-once ingest, zero
//! re-parse chunk passes.
//!
//! The out-of-core path ([`crate::shard`]) re-reads the source CSV for
//! every chunk pass, paying tokenization, quote handling and dictionary
//! hashing each time — the dominant per-pass cost at 10⁷ tuples and a
//! hard wall before 10⁸. This module spills each chunk **once**, during
//! the one-and-only scan pass, as a dictionary-encoded column-major
//! block of fixed-width [`ValueId`]s; every later pass decodes blocks
//! straight back into [`RelationChunk`]s with a buffered sequential
//! read — no tokenization, no hashing, bit-identical to the CSV pass
//! (pinned by round-trip tests in `crate::shard`).
//!
//! ## On-disk layout (version 1)
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ magic "DBSS" (4)  │ version u32 LE (4)                     │
//! ├────────────────────────────────────────────────────────────┤
//! │ block 0 │ block 1 │ …                                      │ blocks
//! ├────────────────────────────────────────────────────────────┤
//! │ footer: n_chunks, n_tuples, chunk_tuples, content_hash,    │
//! │         name, attr names, dictionary strings, checksum     │
//! ├────────────────────────────────────────────────────────────┤
//! │ footer offset u64 LE (8) │ trailer magic "DBSSEND1" (8)    │
//! └────────────────────────────────────────────────────────────┘
//!
//! block i = chunk_index u64 LE
//!         │ n_rows u64 LE
//!         │ m × n_rows × ValueId u32 LE   (column-major)
//!         │ checksum u64 LE               (FNV-1a over the block bytes)
//! ```
//!
//! All integers are little-endian. The metadata lives in a *footer*
//! (found via the fixed-size trailer) rather than a leading header
//! because the dictionary is only frozen when the scan pass ends —
//! footer placement is what makes single-pass spill-on-scan possible:
//! blocks stream out while the scan is still interning (row-major
//! interning means every id is final the moment its chunk is written).
//!
//! ## Invariants
//!
//! * Every block and the footer carry an FNV-1a checksum; a flipped
//!   byte, a truncated file, or trailing garbage yields a typed
//!   [`StoreError`] naming the chunk — never a panic or a
//!   silently-wrong chunk.
//! * Block `i` must declare `chunk_index == i` and exactly
//!   `min(chunk_tuples, n_tuples − i·chunk_tuples)` rows; every decoded
//!   id must be below the dictionary length.
//! * Dictionary entry 0 is the reserved NULL value; entries `1..len`
//!   are the interned strings in id order, so rebuilding by re-interning
//!   reproduces the exact [`ValueDict`] of the scan pass.

use crate::csv::CsvError;
use crate::dict::{ValueDict, ValueId};
use crate::shard::{RelationChunk, ShardedRelation};
use dbmine_telemetry::{counter_add, Counter};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Leading file magic.
pub const MAGIC: [u8; 4] = *b"DBSS";

/// Trailing file magic (distinct from the leading one so a truncated
/// copy of a store never passes for a whole one).
pub const TRAILER_MAGIC: [u8; 8] = *b"DBSSEND1";

/// Current format version.
pub const VERSION: u32 = 1;

/// Bytes before the first block: leading magic + version.
const PRELUDE_LEN: u64 = 8;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a (the same function the relation content hash
/// uses) over raw store bytes.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Errors reading or writing a binary shard store. Corruption is always
/// typed — checksum or length mismatches name the offending chunk.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a shard store (bad magic / malformed trailer).
    NotAStore { detail: String },
    /// The store was written by an unsupported format version.
    UnsupportedVersion { found: u32 },
    /// The store is corrupt or truncated. `chunk` names the block where
    /// the damage was detected (`None` for header/footer damage).
    Corrupt {
        chunk: Option<usize>,
        detail: String,
    },
    /// The store's recorded relation content hash does not match the
    /// expected one — it describes different content.
    ContentHashMismatch { expected: u64, found: u64 },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::NotAStore { detail } => {
                write!(f, "not a dbmine shard store: {detail}")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported shard store version {found} (this build reads version {VERSION})"
                )
            }
            StoreError::Corrupt { chunk, detail } => match chunk {
                Some(i) => write!(f, "corrupt store at chunk {i}: {detail}"),
                None => write!(f, "corrupt store: {detail}"),
            },
            StoreError::ContentHashMismatch { expected, found } => write!(
                f,
                "store content hash {found:016x} does not match expected {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

fn corrupt(chunk: Option<usize>, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        chunk,
        detail: detail.into(),
    }
}

/// The footer metadata of a store, borrowed from the relation being
/// spilled ([`SpillWriter::finish`]).
pub struct StoreFooter<'a> {
    pub name: &'a str,
    pub attr_names: &'a [String],
    pub chunk_tuples: usize,
    pub n_tuples: usize,
    pub content_hash: u64,
    pub dict: &'a ValueDict,
}

/// Parsed store metadata (everything but the blocks), read from the
/// footer by [`read_meta`].
#[derive(Clone, Debug)]
pub(crate) struct StoreMeta {
    pub name: String,
    pub attr_names: Vec<String>,
    pub chunk_tuples: usize,
    pub n_tuples: usize,
    pub content_hash: u64,
    pub dict: ValueDict,
    /// File offset one past the last block (= the footer offset).
    pub data_len: u64,
}

/// Streams dictionary-encoded chunks into a `.dbss` file. Create with
/// [`SpillWriter::create`], feed every chunk in order via
/// [`SpillWriter::write_chunk`], then seal the store with
/// [`SpillWriter::finish`] — the footer (schema, counts, dictionary,
/// content hash) is only known once the scan pass is done, which is why
/// it goes last.
///
/// Holds a `spill.write` telemetry span for the lifetime of the writer
/// and bumps [`Counter::SpillChunksWritten`] per block.
pub struct SpillWriter {
    out: BufWriter<File>,
    block: Vec<u8>,
    chunks_written: usize,
    rows_written: usize,
    bytes_written: u64,
    _span: dbmine_telemetry::Span,
}

impl SpillWriter {
    /// Creates (truncating) the store file and writes the leading magic.
    pub fn create(path: impl AsRef<Path>) -> Result<SpillWriter, StoreError> {
        let _span = dbmine_telemetry::span("spill.write");
        let mut out = BufWriter::new(File::create(path.as_ref())?);
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        Ok(SpillWriter {
            out,
            block: Vec::new(),
            chunks_written: 0,
            rows_written: 0,
            bytes_written: PRELUDE_LEN,
            _span,
        })
    }

    /// Chunks written so far.
    pub fn n_chunks(&self) -> usize {
        self.chunks_written
    }

    /// Appends one chunk as a checksummed column-major block. Chunks
    /// must arrive in order: `chunk.start` has to equal the rows written
    /// so far.
    pub fn write_chunk(&mut self, chunk: &RelationChunk) -> Result<(), StoreError> {
        assert_eq!(
            chunk.start, self.rows_written,
            "chunks must be spilled in order without gaps"
        );
        let rows = chunk.n_rows();
        self.block.clear();
        self.block
            .extend_from_slice(&(self.chunks_written as u64).to_le_bytes());
        self.block.extend_from_slice(&(rows as u64).to_le_bytes());
        for column in &chunk.columns {
            debug_assert_eq!(column.len(), rows);
            for &id in column {
                self.block.extend_from_slice(&id.to_le_bytes());
            }
        }
        let mut fnv = Fnv::new();
        fnv.update(&self.block);
        self.block.extend_from_slice(&fnv.finish().to_le_bytes());
        self.out.write_all(&self.block)?;
        self.bytes_written += self.block.len() as u64;
        self.chunks_written += 1;
        self.rows_written += rows;
        counter_add(Counter::SpillChunksWritten, 1);
        Ok(())
    }

    /// Writes the footer + trailer and flushes. Returns the total store
    /// size in bytes. The declared tuple count must match the rows
    /// actually spilled.
    pub fn finish(mut self, footer: &StoreFooter<'_>) -> Result<u64, StoreError> {
        assert_eq!(
            footer.n_tuples, self.rows_written,
            "footer tuple count must match the spilled rows"
        );
        let footer_offset = self.bytes_written;
        let mut buf: Vec<u8> = Vec::with_capacity(256);
        buf.extend_from_slice(&(self.chunks_written as u64).to_le_bytes());
        buf.extend_from_slice(&(footer.n_tuples as u64).to_le_bytes());
        buf.extend_from_slice(&(footer.chunk_tuples as u64).to_le_bytes());
        buf.extend_from_slice(&footer.content_hash.to_le_bytes());
        write_str(&mut buf, footer.name);
        buf.extend_from_slice(&(footer.attr_names.len() as u64).to_le_bytes());
        for attr in footer.attr_names {
            write_str(&mut buf, attr);
        }
        let dict_len = footer.dict.len();
        buf.extend_from_slice(&(dict_len as u64).to_le_bytes());
        for id in 1..dict_len {
            write_str(&mut buf, footer.dict.string(id as ValueId));
        }
        let mut fnv = Fnv::new();
        fnv.update(&buf);
        buf.extend_from_slice(&fnv.finish().to_le_bytes());
        buf.extend_from_slice(&footer_offset.to_le_bytes());
        buf.extend_from_slice(&TRAILER_MAGIC);
        self.out.write_all(&buf)?;
        self.out.flush()?;
        Ok(footer_offset + buf.len() as u64)
    }
}

fn write_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// A little cursor over the footer bytes; every read is bounds-checked
/// into a typed corruption error.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let end = self.pos + 8;
        if end > self.buf.len() {
            return Err(corrupt(None, format!("footer truncated reading {what}")));
        }
        let v = u64::from_le_bytes(self.buf[self.pos..end].try_into().unwrap());
        self.pos = end;
        Ok(v)
    }

    fn str(&mut self, what: &str) -> Result<String, StoreError> {
        let end = self.pos + 4;
        if end > self.buf.len() {
            return Err(corrupt(None, format!("footer truncated reading {what}")));
        }
        let len = u32::from_le_bytes(self.buf[self.pos..end].try_into().unwrap()) as usize;
        self.pos = end;
        let end = self.pos + len;
        if end > self.buf.len() {
            return Err(corrupt(None, format!("footer truncated reading {what}")));
        }
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| corrupt(None, format!("{what} is not valid UTF-8")))?
            .to_string();
        self.pos = end;
        Ok(s)
    }
}

/// Reads and validates the store metadata (magic, version, trailer,
/// footer checksum, counts, dictionary) without touching any block.
pub(crate) fn read_meta(path: &Path) -> Result<StoreMeta, StoreError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    // Smallest possible store: prelude (8) + footer + trailer (16).
    if file_len < PRELUDE_LEN + 16 {
        return Err(StoreError::NotAStore {
            detail: format!("file is only {file_len} bytes"),
        });
    }
    let mut prelude = [0u8; PRELUDE_LEN as usize];
    file.read_exact(&mut prelude)?;
    if prelude[..4] != MAGIC {
        return Err(StoreError::NotAStore {
            detail: "bad leading magic".to_string(),
        });
    }
    let version = u32::from_le_bytes(prelude[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    file.seek(SeekFrom::End(-16))?;
    let mut trailer = [0u8; 16];
    file.read_exact(&mut trailer)?;
    if trailer[8..] != TRAILER_MAGIC {
        return Err(corrupt(
            None,
            "bad trailer magic (file truncated or not sealed)",
        ));
    }
    let footer_offset = u64::from_le_bytes(trailer[..8].try_into().unwrap());
    if footer_offset < PRELUDE_LEN || footer_offset + 16 + 8 > file_len {
        return Err(corrupt(
            None,
            format!("footer offset {footer_offset} out of bounds for {file_len}-byte file"),
        ));
    }
    let footer_len = (file_len - 16 - footer_offset) as usize;
    file.seek(SeekFrom::Start(footer_offset))?;
    let mut footer = vec![0u8; footer_len];
    file.read_exact(&mut footer)?;
    let (body, check) = footer.split_at(footer_len - 8);
    let mut fnv = Fnv::new();
    fnv.update(body);
    if fnv.finish() != u64::from_le_bytes(check.try_into().unwrap()) {
        return Err(corrupt(None, "footer checksum mismatch"));
    }

    let mut cur = Cursor { buf: body, pos: 0 };
    let n_chunks = cur.u64("chunk count")? as usize;
    let n_tuples = cur.u64("tuple count")? as usize;
    let chunk_tuples = cur.u64("chunk size")? as usize;
    let content_hash = cur.u64("content hash")?;
    let name = cur.str("relation name")?;
    let m = cur.u64("attribute count")? as usize;
    if m > crate::attrset::MAX_ATTRS {
        return Err(corrupt(
            None,
            format!(
                "{m} attributes exceeds the {} supported",
                crate::attrset::MAX_ATTRS
            ),
        ));
    }
    let mut attr_names = Vec::with_capacity(m);
    for i in 0..m {
        attr_names.push(cur.str(&format!("attribute name {i}"))?);
    }
    let dict_len = cur.u64("dictionary length")? as usize;
    if dict_len == 0 {
        return Err(corrupt(None, "dictionary must hold at least NULL"));
    }
    let mut dict = ValueDict::new();
    for id in 1..dict_len {
        let s = cur.str(&format!("dictionary entry {id}"))?;
        if dict.intern(&s) as usize != id {
            return Err(corrupt(
                None,
                format!("dictionary entry {id} ({s:?}) duplicates an earlier entry"),
            ));
        }
    }
    if cur.pos != body.len() {
        return Err(corrupt(
            None,
            format!("{} unexpected trailing footer bytes", body.len() - cur.pos),
        ));
    }
    if chunk_tuples == 0 {
        return Err(corrupt(None, "chunk size must be positive"));
    }
    if n_chunks != n_tuples.div_ceil(chunk_tuples) {
        return Err(corrupt(
            None,
            format!(
                "{n_chunks} chunks inconsistent with {n_tuples} tuples at {chunk_tuples}/chunk"
            ),
        ));
    }
    Ok(StoreMeta {
        name,
        attr_names,
        chunk_tuples,
        n_tuples,
        content_hash,
        dict,
        data_len: footer_offset,
    })
}

/// Iterator decoding [`RelationChunk`]s straight out of a store-backed
/// [`ShardedRelation`] — a buffered sequential read with per-block
/// checksum, index, row-count and value-range validation, zero
/// tokenization and zero dictionary hashing.
///
/// Holds a `spill.read` telemetry span for the lifetime of the pass and
/// bumps [`Counter::SpillChunksRead`] per block.
pub struct StoreChunks<'a> {
    sharded: &'a ShardedRelation,
    path: PathBuf,
    reader: BufReader<File>,
    data_len: u64,
    pos: u64,
    next_chunk: usize,
    block: Vec<u8>,
    failed: bool,
    _span: dbmine_telemetry::Span,
}

impl<'a> StoreChunks<'a> {
    /// Opens a chunk pass over `path` for `sharded` (which must be the
    /// store-backed relation `read_meta` produced for that same file).
    pub(crate) fn open(sharded: &'a ShardedRelation, path: &Path) -> Result<Self, StoreError> {
        let _span = dbmine_telemetry::span("spill.read");
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut prelude = [0u8; PRELUDE_LEN as usize];
        file.read_exact(&mut prelude)?;
        if prelude[..4] != MAGIC {
            return Err(StoreError::NotAStore {
                detail: "bad leading magic".to_string(),
            });
        }
        let version = u32::from_le_bytes(prelude[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let data_len = sharded.store_data_len().unwrap_or(file_len);
        Ok(StoreChunks {
            sharded,
            path: path.to_path_buf(),
            reader: BufReader::with_capacity(1 << 20, file),
            data_len,
            pos: PRELUDE_LEN,
            next_chunk: 0,
            block: Vec::new(),
            failed: false,
            _span,
        })
    }

    fn next_block(&mut self) -> Result<Option<RelationChunk>, StoreError> {
        let n = self.sharded.n_tuples();
        let m = self.sharded.n_attrs();
        let chunk_tuples = self.sharded.chunk_tuples();
        let n_chunks = n.div_ceil(chunk_tuples);
        let i = self.next_chunk;
        if i >= n_chunks {
            if self.pos != self.data_len {
                return Err(corrupt(
                    None,
                    format!(
                        "{} unexpected bytes after the last block",
                        self.data_len - self.pos
                    ),
                ));
            }
            return Ok(None);
        }
        let start = i * chunk_tuples;
        let rows = chunk_tuples.min(n - start);
        let payload_len = 16 + m * rows * 4;
        let block_len = payload_len + 8;
        if self.pos + block_len as u64 > self.data_len {
            return Err(corrupt(
                Some(i),
                format!(
                    "block truncated: need {block_len} bytes, {} remain before the footer",
                    self.data_len - self.pos
                ),
            ));
        }
        self.block.resize(block_len, 0);
        self.reader.read_exact(&mut self.block).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                corrupt(Some(i), "block truncated mid-read")
            } else {
                StoreError::Io(e)
            }
        })?;
        self.pos += block_len as u64;
        let (payload, check) = self.block.split_at(payload_len);
        let mut fnv = Fnv::new();
        fnv.update(payload);
        if fnv.finish() != u64::from_le_bytes(check.try_into().unwrap()) {
            return Err(corrupt(Some(i), "block checksum mismatch"));
        }
        let stored_index = u64::from_le_bytes(payload[..8].try_into().unwrap());
        if stored_index != i as u64 {
            return Err(corrupt(
                Some(i),
                format!("block declares chunk index {stored_index}"),
            ));
        }
        let stored_rows = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        if stored_rows != rows as u64 {
            return Err(corrupt(
                Some(i),
                format!("block declares {stored_rows} rows, expected {rows}"),
            ));
        }
        let dict_len = self.sharded.dict().len() as u32;
        let mut columns: Vec<Vec<ValueId>> = Vec::with_capacity(m);
        let mut cells = payload[16..].chunks_exact(4);
        for a in 0..m {
            let mut column = Vec::with_capacity(rows);
            for _ in 0..rows {
                let id = u32::from_le_bytes(cells.next().unwrap().try_into().unwrap());
                if id >= dict_len {
                    return Err(corrupt(
                        Some(i),
                        format!("value id {id} in attribute {a} exceeds dictionary ({dict_len})"),
                    ));
                }
                column.push(id);
            }
            columns.push(column);
        }
        self.next_chunk += 1;
        counter_add(Counter::SpillChunksRead, 1);
        Ok(Some(RelationChunk { start, columns }))
    }
}

impl Iterator for StoreChunks<'_> {
    type Item = Result<RelationChunk, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_block() {
            Ok(Some(chunk)) => Some(Ok(chunk)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(CsvError::from(e).in_file(self.path.clone())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A CSV with quoting, an embedded comma, an embedded newline, an
    /// empty-string value and NULLs — the cases whose encodings must
    /// survive the store round trip.
    const SAMPLE: &str = "A,B,C\n\
        a,w,p\n\
        a,w,\n\
        w,1,\"x,1\"\n\
        \"multi\nline\",\"\",x\n\
        z,2,x\n";

    static SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join("dbmine_spill_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tmp(ext: &str) -> PathBuf {
        let id = SEQ.fetch_add(1, Ordering::Relaxed);
        tmp_dir().join(format!("{}_{id}.{ext}", std::process::id()))
    }

    /// Writes SAMPLE to a CSV file and spills it; returns both paths.
    fn sample_store(chunk_tuples: usize) -> (PathBuf, PathBuf) {
        let csv = tmp("csv");
        let store = tmp("dbss");
        std::fs::write(&csv, SAMPLE).unwrap();
        ShardedRelation::scan_csv_path_spill(&csv, chunk_tuples, &store).unwrap();
        (csv, store)
    }

    fn drain(rel: &ShardedRelation) -> Result<Vec<RelationChunk>, CsvError> {
        rel.chunks()?.collect()
    }

    #[test]
    fn store_chunks_are_bit_identical_to_csv_chunks() {
        for chunk_tuples in [1, 2, 3, 100] {
            let (csv, store) = sample_store(chunk_tuples);
            let plain = ShardedRelation::scan_csv_path(&csv, chunk_tuples).unwrap();
            let stored = ShardedRelation::open_store(&store).unwrap();
            assert!(stored.is_store_backed());
            assert!(!plain.is_store_backed());
            assert_eq!(stored.content_hash(), plain.content_hash());
            assert_eq!(stored.name(), plain.name());
            assert_eq!(stored.attr_names(), plain.attr_names());
            assert_eq!(stored.n_tuples(), plain.n_tuples());
            assert_eq!(stored.chunk_tuples(), plain.chunk_tuples());
            assert_eq!(stored.dict().len(), plain.dict().len());
            for id in 0..plain.dict().len() {
                assert_eq!(
                    stored.dict().string(id as ValueId),
                    plain.dict().string(id as ValueId)
                );
            }
            let a = drain(&plain).unwrap();
            let b = drain(&stored).unwrap();
            assert_eq!(a.len(), b.len(), "chunk_tuples={chunk_tuples}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.start, y.start);
                assert_eq!(x.columns, y.columns, "chunk_tuples={chunk_tuples}");
            }
            stored.verify_content().unwrap();
            std::fs::remove_file(csv).ok();
            std::fs::remove_file(store).ok();
        }
    }

    #[test]
    fn spill_to_matches_fused_spill_byte_for_byte() {
        let (csv, fused) = sample_store(2);
        let plain = ShardedRelation::scan_csv_path(&csv, 2).unwrap();
        let via_pass = tmp("dbss");
        let respilled = plain.spill_to(&via_pass).unwrap();
        assert!(respilled.is_store_backed());
        assert_eq!(
            std::fs::read(&fused).unwrap(),
            std::fs::read(&via_pass).unwrap(),
            "fused spill-on-scan and spill_to must write identical stores"
        );
        std::fs::remove_file(csv).ok();
        std::fs::remove_file(fused).ok();
        std::fs::remove_file(via_pass).ok();
    }

    #[test]
    fn empty_relation_round_trips() {
        let csv = tmp("csv");
        let store = tmp("dbss");
        std::fs::write(&csv, "A,B\n").unwrap();
        let s = ShardedRelation::scan_csv_path_spill(&csv, 4, &store).unwrap();
        assert_eq!(s.n_tuples(), 0);
        assert_eq!(drain(&s).unwrap().len(), 0);
        let reopened = ShardedRelation::open_store(&store).unwrap();
        assert_eq!(reopened.n_tuples(), 0);
        reopened.verify_content().unwrap();
        std::fs::remove_file(csv).ok();
        std::fs::remove_file(store).ok();
    }

    /// Every single-byte flip anywhere in the store must surface as a
    /// typed error somewhere in open → drain → verify — never a panic,
    /// never a silently different chunk stream.
    #[test]
    fn every_single_byte_flip_is_detected() {
        let (csv, store) = sample_store(2);
        let reference = {
            let s = ShardedRelation::open_store(&store).unwrap();
            drain(&s).unwrap()
        };
        let bytes = std::fs::read(&store).unwrap();
        let flipped_path = tmp("dbss");
        for offset in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[offset] ^= 0xff;
            std::fs::write(&flipped_path, &mutated).unwrap();
            let outcome = ShardedRelation::open_store(&flipped_path)
                .and_then(|s| drain(&s).map(|chunks| (s, chunks)))
                .and_then(|(s, chunks)| s.verify_content().map(|()| chunks));
            match outcome {
                Err(e) => {
                    // Typed and renderable, not a panic.
                    let _ = e.to_string();
                }
                Ok(chunks) => panic!(
                    "flip at byte {offset} went undetected (got {} chunks, wanted an error; \
                     reference has {})",
                    chunks.len(),
                    reference.len()
                ),
            }
        }
        std::fs::remove_file(csv).ok();
        std::fs::remove_file(store).ok();
        std::fs::remove_file(flipped_path).ok();
    }

    #[test]
    fn block_corruption_names_the_chunk() {
        let (csv, store) = sample_store(2);
        let mut bytes = std::fs::read(&store).unwrap();
        // Flip one byte inside the *second* block's payload. Blocks
        // start at PRELUDE_LEN; block 0 spans 16 + 3*2*4 + 8 = 48 bytes
        // (2 rows × 3 attrs), so offset PRELUDE_LEN + 48 + 16 + 1 is in
        // block 1's value area.
        let in_block1 = PRELUDE_LEN as usize + 48 + 17;
        bytes[in_block1] ^= 0xff;
        let bad = tmp("dbss");
        std::fs::write(&bad, &bytes).unwrap();
        let s = ShardedRelation::open_store(&bad).unwrap();
        let err = drain(&s).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("chunk 1") && msg.contains("checksum"),
            "error must name the damaged chunk: {msg}"
        );
        std::fs::remove_file(csv).ok();
        std::fs::remove_file(store).ok();
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn truncation_mid_block_is_typed() {
        let (csv, store) = sample_store(2);
        let bytes = std::fs::read(&store).unwrap();
        // Cut inside block 0, well before the footer.
        let cut = tmp("dbss");
        std::fs::write(&cut, &bytes[..PRELUDE_LEN as usize + 20]).unwrap();
        let err = ShardedRelation::open_store(&cut).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("trailer") || msg.contains("truncated"),
            "truncation must be typed: {msg}"
        );
        std::fs::remove_file(csv).ok();
        std::fs::remove_file(store).ok();
        std::fs::remove_file(cut).ok();
    }

    #[test]
    fn forged_content_hash_is_caught_by_verification() {
        // A store whose blocks and footer are internally consistent but
        // whose recorded hash describes different content: only the
        // end-to-end recomputation can catch it.
        let path = tmp("dbss");
        let mut dict = ValueDict::new();
        let x = dict.intern("x");
        let y = dict.intern("y");
        let chunk = RelationChunk {
            start: 0,
            columns: vec![vec![x, x], vec![y, crate::dict::NULL_VALUE]],
        };
        let mut w = SpillWriter::create(&path).unwrap();
        w.write_chunk(&chunk).unwrap();
        w.finish(&StoreFooter {
            name: "t",
            attr_names: &["A".to_string(), "B".to_string()],
            chunk_tuples: 2,
            n_tuples: 2,
            content_hash: 0xDEAD_BEEF, // forged
            dict: &dict,
        })
        .unwrap();
        let s = ShardedRelation::open_store(&path).unwrap();
        assert_eq!(s.content_hash(), 0xDEAD_BEEF);
        drain(&s).unwrap(); // blocks themselves decode fine
        let err = s.verify_content().unwrap_err();
        assert!(
            err.to_string().contains("content hash"),
            "forged hash must be typed: {err}"
        );
        match err {
            CsvError::Store(StoreError::ContentHashMismatch { expected, .. }) => {
                assert_eq!(expected, 0xDEAD_BEEF);
            }
            other => panic!("wrong error variant: {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn non_store_files_are_rejected_with_not_a_store() {
        let path = tmp("dbss");
        std::fs::write(&path, "A,B\n1,2\n").unwrap();
        let err = ShardedRelation::open_store(&path).unwrap_err();
        assert!(
            err.to_string().contains("not a dbmine shard store"),
            "{err}"
        );
        std::fs::write(&path, "x").unwrap();
        let err = ShardedRelation::open_store(&path).unwrap_err();
        assert!(
            err.to_string().contains("not a dbmine shard store"),
            "{err}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn future_versions_are_rejected_with_version_error() {
        let (csv, store) = sample_store(2);
        let mut bytes = std::fs::read(&store).unwrap();
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        let v2 = tmp("dbss");
        std::fs::write(&v2, &bytes).unwrap();
        let err = ShardedRelation::open_store(&v2).unwrap_err();
        assert!(
            err.to_string()
                .contains("unsupported shard store version 2"),
            "{err}"
        );
        std::fs::remove_file(csv).ok();
        std::fs::remove_file(store).ok();
        std::fs::remove_file(v2).ok();
    }
}
