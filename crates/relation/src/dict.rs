//! Global value dictionary.
//!
//! The paper's value universe is `V = V1 ∪ … ∪ Vm` — a *union* over the
//! attribute domains. Identical strings appearing in different attributes
//! are therefore the **same** value, which is what allows value clustering
//! and attribute grouping to see cross-attribute duplication (most notably
//! the `NULL` value shared by the sparsely-populated DBLP attributes).
//!
//! `NULL`/missing cells intern to the reserved id [`NULL_VALUE`] (0).

use std::collections::HashMap;

/// Identifier of an interned value. Dense, starting at 0 ([`NULL_VALUE`]).
pub type ValueId = u32;

/// The reserved id of the NULL/missing value.
pub const NULL_VALUE: ValueId = 0;

/// How NULL values render in output.
pub const NULL_DISPLAY: &str = "NULL";

/// Interns value strings to dense [`ValueId`]s, globally across attributes.
#[derive(Clone, Debug, Default)]
pub struct ValueDict {
    map: HashMap<String, ValueId>,
    strings: Vec<String>,
}

impl ValueDict {
    /// A fresh dictionary containing only the NULL value.
    pub fn new() -> Self {
        ValueDict {
            map: HashMap::new(),
            strings: vec![NULL_DISPLAY.to_string()],
        }
    }

    /// Interns `s`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, s: &str) -> ValueId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.strings.len() as ValueId;
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), id);
        id
    }

    /// Interns an optional cell: `None` maps to [`NULL_VALUE`].
    pub fn intern_cell(&mut self, cell: Option<&str>) -> ValueId {
        match cell {
            None => NULL_VALUE,
            Some(s) => self.intern(s),
        }
    }

    /// Looks up a string without interning it.
    pub fn lookup(&self, s: &str) -> Option<ValueId> {
        self.map.get(s).copied()
    }

    /// The string of value `id`; NULL renders as `"NULL"`.
    ///
    /// # Panics
    /// Panics if `id` was never issued by this dictionary.
    pub fn string(&self, id: ValueId) -> &str {
        &self.strings[id as usize]
    }

    /// Total number of ids issued, including NULL.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if only the NULL value exists.
    pub fn is_empty(&self) -> bool {
        self.strings.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_reserved() {
        let mut d = ValueDict::new();
        assert_eq!(d.intern_cell(None), NULL_VALUE);
        assert_eq!(d.string(NULL_VALUE), "NULL");
        assert_eq!(d.len(), 1);
        assert!(d.is_empty());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = ValueDict::new();
        let a = d.intern("Boston");
        let b = d.intern("Boston");
        assert_eq!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut d = ValueDict::new();
        let a = d.intern("02139");
        let b = d.intern("02138");
        assert_ne!(a, b);
        assert_eq!(d.string(a), "02139");
        assert_eq!(d.string(b), "02138");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = ValueDict::new();
        assert_eq!(d.lookup("x"), None);
        let id = d.intern("x");
        assert_eq!(d.lookup("x"), Some(id));
    }

    #[test]
    fn same_string_across_attributes_shares_id() {
        // The union semantics of V = V1 ∪ … ∪ Vm: interning is global, so
        // callers interning "Pat" for attribute A and attribute B get one id.
        let mut d = ValueDict::new();
        let a = d.intern_cell(Some("Pat"));
        let b = d.intern_cell(Some("Pat"));
        assert_eq!(a, b);
    }
}
