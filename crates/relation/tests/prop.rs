//! Property tests for the relation substrate: CSV round-trips, interning
//! consistency and projection invariants on arbitrary data.

use dbmine_relation::csv::{read_relation, write_relation};
use dbmine_relation::stats::{projection_distinct, projection_entropy};
use dbmine_relation::{AttrSet, Relation, RelationBuilder, ShardedRelation, TupleRows, ValueIndex};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Arbitrary cell content, including empty strings, quotes, commas,
/// newlines and NULLs.
fn arb_cell() -> impl Strategy<Value = Option<String>> {
    proptest::option::weighted(
        0.8,
        proptest::string::string_regex("[ -~]{0,8}").expect("regex"),
    )
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    (1usize..=4, 0usize..=8).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::collection::vec(arb_cell(), m), n).prop_map(
            move |rows| {
                let names: Vec<String> = (0..m).map(|a| format!("c{a}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let mut b = RelationBuilder::new("t", &refs);
                for row in rows {
                    let cells: Vec<Option<&str>> = row.iter().map(|c| c.as_deref()).collect();
                    b.push_row(&cells);
                }
                b.build()
            },
        )
    })
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique (csv, store) path pair per proptest case, so concurrent
/// test binaries never collide.
fn spill_paths() -> (std::path::PathBuf, std::path::PathBuf) {
    let id = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("dbmine_spill_prop");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = format!("{}_{id}", std::process::id());
    (
        dir.join(format!("{stem}.csv")),
        dir.join(format!("{stem}.dbss")),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csv_roundtrip_preserves_cells(rel in arb_relation()) {
        let mut buf = Vec::new();
        write_relation(&rel, &mut buf).unwrap();
        let back = read_relation(buf.as_slice(), "t").unwrap();
        prop_assert_eq!(back.n_tuples(), rel.n_tuples());
        prop_assert_eq!(back.n_attrs(), rel.n_attrs());
        for t in 0..rel.n_tuples() {
            for a in 0..rel.n_attrs() {
                prop_assert_eq!(back.is_null(t, a), rel.is_null(t, a), "null ({}, {})", t, a);
                if !rel.is_null(t, a) {
                    prop_assert_eq!(back.value_str(t, a), rel.value_str(t, a));
                }
            }
        }
    }

    #[test]
    fn interning_is_consistent(rel in arb_relation()) {
        // Equal strings ⇔ equal value ids, across all cells.
        let cells: Vec<(usize, usize)> = (0..rel.n_tuples())
            .flat_map(|t| (0..rel.n_attrs()).map(move |a| (t, a)))
            .collect();
        for &(t1, a1) in &cells {
            for &(t2, a2) in &cells {
                let same_id = rel.value(t1, a1) == rel.value(t2, a2);
                let same_str = rel.is_null(t1, a1) == rel.is_null(t2, a2)
                    && rel.value_str(t1, a1) == rel.value_str(t2, a2);
                // NULLs all share one id and render as "NULL".
                prop_assert_eq!(same_id, same_str, "cells ({},{}) vs ({},{})", t1, a1, t2, a2);
            }
        }
    }

    #[test]
    fn tuple_rows_are_distributions(rel in arb_relation()) {
        if rel.n_tuples() == 0 { return Ok(()); }
        let rows = TupleRows::build(&rel);
        for t in 0..rel.n_tuples() {
            prop_assert!(rows.row(t).is_normalized(1e-9));
        }
        prop_assert!(rows.mutual_information() >= -1e-9);
    }

    #[test]
    fn value_index_accounts_every_cell(rel in arb_relation()) {
        let idx = ValueIndex::build(&rel);
        let total_o: f64 = (0..idx.len()).map(|i| idx.o_row(i).total()).sum();
        prop_assert_eq!(total_o as usize, rel.n_tuples() * rel.n_attrs());
        // Occurrence lists are sorted, deduplicated, in range.
        for i in 0..idx.len() {
            let occ = idx.occurrences(i);
            prop_assert!(occ.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(occ.iter().all(|&t| (t as usize) < rel.n_tuples()));
        }
    }

    #[test]
    fn projection_invariants(rel in arb_relation(), bits in 0u64..15) {
        if rel.n_tuples() == 0 { return Ok(()); }
        let attrs = AttrSet::from_bits(bits).intersect(rel.all_attrs());
        if attrs.is_empty() { return Ok(()); }
        let d = projection_distinct(&rel, attrs);
        prop_assert!(d >= 1 && d <= rel.n_tuples());
        let h = projection_entropy(&rel, attrs);
        prop_assert!(h >= -1e-9);
        prop_assert!(h <= (rel.n_tuples() as f64).log2() + 1e-9);
        // Entropy is maximal exactly when all projected rows are distinct.
        if d == rel.n_tuples() {
            prop_assert!((h - (d as f64).log2()).abs() < 1e-9);
        }
        // Adding attributes never decreases the distinct count.
        let bigger = projection_distinct(&rel, rel.all_attrs());
        prop_assert!(bigger >= d);
    }

    /// Spill round trip: arbitrary relations (NULLs, quoted/escaped
    /// fields, empty strings, single-column, 0-row) written to CSV,
    /// scanned with spill — the store's chunk stream, dictionary,
    /// content hash and materialization must be bit-identical to the
    /// CSV re-parse path, at several chunk granularities.
    #[test]
    fn spill_store_chunks_bit_identical_to_csv_chunks(
        rel in arb_relation(),
        chunk_tuples in 1usize..=5,
    ) {
        let mut buf = Vec::new();
        write_relation(&rel, &mut buf).unwrap();
        let (csv_path, store_path) = spill_paths();
        std::fs::write(&csv_path, &buf).unwrap();

        let plain = ShardedRelation::scan_csv_path(&csv_path, chunk_tuples).unwrap();
        let spilled =
            ShardedRelation::scan_csv_path_spill(&csv_path, chunk_tuples, &store_path).unwrap();
        prop_assert!(spilled.is_store_backed());
        prop_assert_eq!(spilled.content_hash(), plain.content_hash());
        prop_assert_eq!(spilled.n_tuples(), plain.n_tuples());
        prop_assert_eq!(spilled.attr_names(), plain.attr_names());
        prop_assert_eq!(spilled.dict().len(), plain.dict().len());
        for id in 0..plain.dict().len() {
            prop_assert_eq!(
                spilled.dict().string(id as u32),
                plain.dict().string(id as u32)
            );
        }

        let csv_chunks: Vec<_> = plain
            .chunks()
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        let store_chunks: Vec<_> = spilled
            .chunks()
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        prop_assert_eq!(csv_chunks.len(), store_chunks.len());
        prop_assert_eq!(csv_chunks.len(), plain.n_chunks());
        for (a, b) in csv_chunks.iter().zip(&store_chunks) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(&a.columns, &b.columns);
        }

        // Re-opening from the file alone reproduces everything, and the
        // end-to-end hash verification agrees.
        let reopened = ShardedRelation::open_store(&store_path).unwrap();
        prop_assert_eq!(reopened.content_hash(), plain.content_hash());
        reopened.verify_content().unwrap();

        // Materializing the store equals loading the CSV in memory.
        let mat = reopened.materialize().unwrap();
        prop_assert_eq!(mat.content_hash(), plain.content_hash());
        prop_assert_eq!(mat.n_tuples(), rel.n_tuples());

        std::fs::remove_file(csv_path).ok();
        std::fs::remove_file(store_path).ok();
    }
}
