//! Smoke tests for the `dbmine` CLI binary (compiled from
//! `crates/core/src/bin/dbmine.rs`).

use std::io::Write;
use std::process::Command;

fn write_demo_csv() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dbmine_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.csv");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "Name,City,Zip").unwrap();
    for (n, c, z) in [
        ("Pat", "Boston", "02139"),
        ("Sal", "Boston", "02139"),
        ("Kim", "Boston", "02139"),
        ("Kim", "Boston", "02139"), // exact duplicate
        ("Ana", "Toronto", "M5S1A1"),
        ("Lee", "Toronto", "M5S1A1"),
    ] {
        writeln!(f, "{n},{c},{z}").unwrap();
    }
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dbmine"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn analyze_produces_full_report() {
    let csv = write_demo_csv();
    let (stdout, stderr, ok) = run(&["analyze", csv.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("# column profile"));
    assert!(stdout.contains("Name"));
    assert!(stdout.contains("# dependencies"));
    // City ↔ Zip redundancy must surface in the ranking.
    assert!(stdout.contains("rank="), "{stdout}");
}

#[test]
fn duplicates_finds_exact_copy() {
    let csv = write_demo_csv();
    let (stdout, _, ok) = run(&["duplicates", csv.to_str().unwrap(), "--phi-t", "0.0"]);
    assert!(ok);
    assert!(stdout.contains("candidate groups"));
    assert!(stdout.contains("group 1"), "{stdout}");
}

#[test]
fn fds_exact_and_approximate() {
    let csv = write_demo_csv();
    let (stdout, _, ok) = run(&["fds", csv.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("exact minimal dependencies"), "{stdout}");

    let (stdout, _, ok) = run(&["fds", csv.to_str().unwrap(), "--approx", "0.2"]);
    assert!(ok);
    assert!(stdout.contains("approximate dependencies"), "{stdout}");
    assert!(stdout.contains("g3 ="), "{stdout}");
}

#[test]
fn fds_rfi_mines_reliable_dependencies() {
    let csv = write_demo_csv();
    let (stdout, stderr, ok) = run(&[
        "fds",
        csv.to_str().unwrap(),
        "--score",
        "rfi",
        "--theta",
        "0.1",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("reliable dependencies (F̂ ≥ 0.1)"),
        "{stdout}"
    );
    assert!(stdout.contains("F̂ ="), "{stdout}");
    assert!(stdout.contains("g3 ="), "{stdout}");

    // `--score rfi` contradicts `--approx` (g3 mining): typed error.
    let (_, stderr, ok) = run(&[
        "fds",
        csv.to_str().unwrap(),
        "--approx",
        "0.2",
        "--score",
        "rfi",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--approx"), "{stderr}");

    // Malformed values are typed flag errors, not panics.
    for bad in [&["--score", "g4"][..], &["--theta", "1.5"][..]] {
        let (_, stderr, ok) = run(&[&["fds", csv.to_str().unwrap()][..], bad].concat());
        assert!(!ok);
        assert!(stderr.contains("invalid value"), "{stderr}");
    }
}

#[test]
fn partition_runs() {
    let csv = write_demo_csv();
    let (stdout, _, ok) = run(&["partition", csv.to_str().unwrap(), "--k", "2"]);
    assert!(ok);
    assert!(stdout.contains("partition 1"), "{stdout}");
    assert!(stdout.contains("partition 2"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let (_, _, ok) = run(&["nonsense"]);
    assert!(!ok);
    let (_, stderr, ok2) = run(&["analyze", "/definitely/not/a/file.csv"]);
    assert!(!ok2);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn sharded_runs_are_byte_identical_to_classic() {
    // The demo relation fits one auto chunk, so every shard-worker
    // count — and the classic unsharded build — must print the same
    // bytes.
    let csv = write_demo_csv();
    let path = csv.to_str().unwrap();
    let (classic, _, ok) = run(&["duplicates", path, "--phi-t", "0.0"]);
    assert!(ok);
    for shards in ["0", "1", "4"] {
        let (sharded, stderr, ok) =
            run(&["duplicates", path, "--phi-t", "0.0", "--shards", shards]);
        assert!(ok, "stderr: {stderr}");
        assert_eq!(sharded, classic, "--shards {shards} output drifted");
    }
    let (analyze_classic, _, _) = run(&["analyze", path]);
    let (analyze_sharded, _, _) = run(&["analyze", path, "--shards", "2"]);
    assert_eq!(analyze_sharded, analyze_classic);
}

#[test]
fn invalid_shards_value_is_a_typed_error() {
    let csv = write_demo_csv();
    for bad in ["four", "-1", "1.5"] {
        // `fds` never reaches Phase 1, but a malformed --shards must
        // still be the same typed error, not silently ignored.
        for cmd in ["duplicates", "fds"] {
            let (_, stderr, ok) = run(&[cmd, csv.to_str().unwrap(), "--shards", bad]);
            assert!(!ok, "{cmd} --shards {bad} must fail");
            assert!(
                stderr.contains(&format!("error: invalid value for --shards: `{bad}`")),
                "stderr: {stderr}"
            );
        }
    }
}
