//! Integration tests over the DBLP experiments (Section 8.2), at a
//! test-friendly scale.

use dbmine::datagen::dblp::NULL_HEAVY_ATTRS;
use dbmine::datagen::{dblp_sample, DblpSpec};
use dbmine::fdmine::{mine_tane, TaneOptions};
use dbmine::relation::AttrSet;
use dbmine::summaries::{
    cluster_values, group_attributes, horizontal_partition, tuple_summary_assignment,
};

fn dblp() -> dbmine::relation::Relation {
    dblp_sample(&DblpSpec::small())
}

#[test]
fn null_heavy_attributes_unite_at_negligible_loss() {
    // Figure 15's headline: the six ≥98%-NULL attributes form a group at
    // (almost) zero information loss.
    let rel = dblp();
    let (assignment, _) = tuple_summary_assignment(&rel, 0.5);
    let values = cluster_values(&rel, 1.0, Some(&assignment));
    let grouping = group_attributes(&values, rel.n_attrs());
    let set: AttrSet = NULL_HEAVY_ATTRS
        .iter()
        .filter_map(|n| rel.attr_id(n))
        .collect();
    let loss = grouping
        .common_merge_loss(set)
        .expect("NULL-heavy attributes participate in A_D");
    assert!(
        loss < 0.05 * grouping.max_loss(),
        "NULL group loss {loss} vs max {}",
        grouping.max_loss()
    );
}

#[test]
fn partitioning_separates_conference_from_journal() {
    let rel = dblp();
    let keep: AttrSet = [
        "Author",
        "Pages",
        "BookTitle",
        "Year",
        "Volume",
        "Journal",
        "Number",
    ]
    .iter()
    .filter_map(|n| rel.attr_id(n))
    .collect();
    let projected = rel.project(keep);
    let part = horizontal_partition(&projected, 0.5, Some(2), 6);

    let bt = projected.attr_id("BookTitle").unwrap();
    let purity = |tuples: &[usize]| {
        let conf = tuples
            .iter()
            .filter(|&&t| !projected.is_null(t, bt))
            .count();
        let f = conf as f64 / tuples.len() as f64;
        f.max(1.0 - f)
    };
    for p in &part.partitions {
        assert!(
            purity(p) > 0.75,
            "partition of size {} is mixed (purity {:.2})",
            p.len(),
            purity(p)
        );
    }
}

#[test]
fn partitions_have_simpler_dependency_structure() {
    // The paper's closing observation (Section 8.2.3 / Table 5): each
    // partition's dependencies are *simpler* than the whole relation's —
    // constant venue columns surface as `∅ → A` dependencies, and the
    // left-hand sides shrink. (The raw FD *count* is not the paper's
    // claim: a clean homogeneous partition legitimately exposes both its
    // own structure and — at test scale — accidental near-key FDs.)
    let rel = dblp();
    let keep: AttrSet = [
        "Author",
        "Pages",
        "BookTitle",
        "Year",
        "Volume",
        "Journal",
        "Number",
    ]
    .iter()
    .filter_map(|n| rel.attr_id(n))
    .collect();
    let projected = rel.project(keep);
    let whole = mine_tane(
        &projected,
        TaneOptions {
            max_lhs: Some(4),
            ..Default::default()
        },
    );
    let mean_lhs = |fds: &[dbmine::fdmine::Fd]| -> f64 {
        fds.iter().map(|f| f.lhs.len() as f64).sum::<f64>() / fds.len().max(1) as f64
    };
    // The unpartitioned relation supports no constant columns and only
    // complex (large-LHS) dependencies.
    assert!(
        whole.iter().all(|f| !f.lhs.is_empty()),
        "the mixed relation should have no constant columns"
    );
    let part = horizontal_partition(&projected, 0.75, Some(2), 6);
    for (i, _) in part.partitions.iter().enumerate() {
        let p = part.partition_relation(&projected, i);
        let fds = mine_tane(
            &p,
            TaneOptions {
                max_lhs: Some(4),
                ..Default::default()
            },
        );
        // Table 5's essence: inside a homogeneous partition, the other
        // publication type's venue attributes are constant (∅ → A).
        assert!(
            fds.iter().any(|f| f.lhs.is_empty()),
            "partition {i} has no constant-column dependency"
        );
        // And the dependency structure is simpler overall: smaller LHSs.
        assert!(
            mean_lhs(&fds) < mean_lhs(&whole),
            "partition {i} mean LHS {} vs whole {}",
            mean_lhs(&fds),
            mean_lhs(&whole)
        );
    }
}

#[test]
fn conference_partition_has_constant_venue_attributes() {
    // Table 5's essence: inside the conference partition, the journal
    // attributes are all NULL, so `∅ → {Volume, Journal}` holds with
    // RAD = RTR = 1 on those columns.
    let rel = dblp();
    let keep: AttrSet = [
        "Author",
        "Pages",
        "BookTitle",
        "Year",
        "Volume",
        "Journal",
        "Number",
    ]
    .iter()
    .filter_map(|n| rel.attr_id(n))
    .collect();
    let projected = rel.project(keep);
    let part = horizontal_partition(&projected, 0.75, Some(2), 6);
    let bt = projected.attr_id("BookTitle").unwrap();
    // Pick the conference-dominant partition.
    let (ci, _) = part
        .partitions
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| {
            p.iter().filter(|&&t| !projected.is_null(t, bt)).count() * 100 / p.len()
        })
        .unwrap();
    let c1 = part.partition_relation(&projected, ci);
    let journal = c1.attr_id("Journal").unwrap();
    assert!(
        c1.null_fraction(journal) > 0.95,
        "journal column should be (almost) all NULL in the conference partition: {}",
        c1.null_fraction(journal)
    );
}

#[test]
fn duplicate_records_exist_by_construction() {
    // The integration pipeline duplicates a quarter of the publications;
    // exact duplicate tuples must be discoverable at φT = 0.
    let rel = dblp();
    let report = dbmine::summaries::find_duplicate_tuples(&rel, 0.0);
    assert!(
        !report.groups.is_empty(),
        "mapped DBLP relation must contain exact duplicate tuples"
    );
    let covered: usize = report.groups.iter().map(|g| g.summary_count).sum();
    assert!(covered as f64 > 0.1 * rel.n_tuples() as f64);
}
