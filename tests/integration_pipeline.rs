//! Cross-crate pipeline tests: CSV round-trips into the miner, miner
//! equivalence, determinism, and the decomposition loop.

use dbmine::datagen::{db2_sample, Db2Spec};
use dbmine::fdrank::decompose;
use dbmine::relation::csv::{read_relation, write_relation};
use dbmine::{FdMiner, MinerConfig, StructureMiner};

#[test]
fn csv_roundtrip_through_full_pipeline() {
    let rel = db2_sample(&Db2Spec::default()).relation;
    let mut buf = Vec::new();
    write_relation(&rel, &mut buf).unwrap();
    let back = read_relation(buf.as_slice(), "db2").unwrap();
    assert_eq!(back.n_tuples(), rel.n_tuples());
    assert_eq!(back.n_attrs(), rel.n_attrs());

    let a = StructureMiner::new(MinerConfig::default()).analyze(&rel);
    let b = StructureMiner::new(MinerConfig::default()).analyze(&back);
    // The pipeline result is invariant under serialization.
    assert_eq!(a.cover.len(), b.cover.len());
    assert_eq!(a.ranked.len(), b.ranked.len());
    for (x, y) in a.ranked.iter().zip(&b.ranked) {
        assert!((x.fd.rank - y.fd.rank).abs() < 1e-9);
        assert!((x.rad - y.rad).abs() < 1e-9);
    }
}

#[test]
fn fdep_and_tane_agree_on_db2() {
    let rel = db2_sample(&Db2Spec::default()).relation;
    let f = StructureMiner::new(MinerConfig {
        fd_miner: FdMiner::Fdep,
        ..Default::default()
    })
    .analyze(&rel);
    let t = StructureMiner::new(MinerConfig {
        fd_miner: FdMiner::Tane,
        ..Default::default()
    })
    .analyze(&rel);
    let mut a = f.fds.clone();
    let mut b = t.fds.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "the two miners must find identical minimal FDs");
}

#[test]
fn analysis_is_deterministic() {
    let rel = db2_sample(&Db2Spec::default()).relation;
    let a = StructureMiner::default().analyze(&rel);
    let b = StructureMiner::default().analyze(&rel);
    let names = rel.attr_names().to_vec();
    let da: Vec<String> = a.ranked.iter().map(|r| r.display(&names)).collect();
    let db: Vec<String> = b.ranked.iter().map(|r| r.display(&names)).collect();
    assert_eq!(da, db);
}

#[test]
fn iterative_decomposition_reduces_storage() {
    // Repeatedly splitting by the top-ranked dependency shrinks total
    // cells and terminates.
    let rel = db2_sample(&Db2Spec::default()).relation;
    let mut current = rel;
    let mut extracted_cells = 0usize;
    let start_cells = current.n_tuples() * current.n_attrs();
    for _ in 0..4 {
        let report = StructureMiner::default().analyze(&current);
        let Some(top) = report.ranked.iter().find(|r| r.fd.promoted) else {
            break;
        };
        let d = decompose(&current, &top.fd);
        extracted_cells += d.s1.n_tuples() * d.s1.n_attrs();
        current = d.s2;
    }
    let end_cells = extracted_cells + current.n_tuples() * current.n_attrs();
    assert!(
        end_cells < start_cells,
        "decomposition should save storage: {end_cells} vs {start_cells}"
    );
}

#[test]
fn report_exposes_all_layers() {
    let rel = db2_sample(&Db2Spec::default()).relation;
    let report = StructureMiner::default().analyze(&rel);
    assert_eq!(report.columns.len(), 19);
    assert!(report.value_groups.duplicates().count() > 10);
    assert!(report.attribute_grouping.attrs.len() >= 12);
    assert!(!report.fds.is_empty());
    assert!(report.cover.len() <= report.fds.len());
    assert!(!report.ranked.is_empty());
}
