//! End-to-end reproduction of the paper's running example (Figures 4–10
//! and Section 7) through the public `dbmine` API.

use dbmine::fdmine::{mine_fdep, Fd};
use dbmine::fdrank::{decompose, rank_fds};
use dbmine::relation::paper::{figure4, figure5};
use dbmine::relation::{AttrSet, ValueIndex};
use dbmine::summaries::{cluster_values, group_attributes};
use dbmine::{MinerConfig, StructureMiner};

#[test]
fn figure6_matrices() {
    let rel = figure4();
    let idx = ValueIndex::build(&rel);
    assert_eq!(idx.len(), 9);
    assert!((idx.prior() - 1.0 / 9.0).abs() < 1e-12);
    // Row of value "2": p(T|2) uniform over t3,t4,t5; O row B=3.
    let two = idx.position(rel.dict().lookup("2").unwrap()).unwrap();
    let row = idx.n_row(two);
    assert!((row.get(2) - 1.0 / 3.0).abs() < 1e-12);
    assert_eq!(idx.o_row(two).get(1), 3.0);
}

#[test]
fn figure7_clusters_and_figure9_f_matrix() {
    let rel = figure4();
    let values = cluster_values(&rel, 0.0, None);
    assert_eq!(values.duplicates().count(), 2);
    assert_eq!(values.non_duplicates().count(), 5);
    let f = values.f_rows(3);
    // Row sums: A = 2, B = 5, C = 3 (occurrence counts of group members).
    assert_eq!(f[0].total(), 2.0);
    assert_eq!(f[1].total(), 5.0);
    assert_eq!(f[2].total(), 3.0);
}

#[test]
fn figure10_dendrogram_and_section7_ranking() {
    let rel = figure4();
    let values = cluster_values(&rel, 0.0, None);
    let grouping = group_attributes(&values, 3);
    // B,C merge first (δI ≈ 0.158); A joins last (δI ≈ 0.5155 ≈ "0.52").
    let seq = grouping.merge_sequence();
    assert_eq!(seq.len(), 2);
    assert!((seq[0].1 - 0.1577).abs() < 1e-3);
    assert!((seq[1].1 - 0.5155).abs() < 1e-3);

    let fds = vec![
        Fd::new(AttrSet::single(0), 1), // A → B
        Fd::new(AttrSet::single(2), 1), // C → B
    ];
    let ranked = rank_fds(&fds, &grouping, 0.5);
    assert_eq!(ranked[0].lhs, AttrSet::single(2));
    assert!(ranked[0].promoted);
    assert!(!ranked[1].promoted);

    // Decomposing by C→B removes more redundancy than by A→B.
    let d_c = decompose(&rel, &ranked[0]);
    let d_a = decompose(&rel, &ranked[1]);
    assert!(d_c.s1.n_tuples() < d_a.s1.n_tuples() + d_a.s2.n_tuples());
    assert!(d_c.storage_reduction() > d_a.storage_reduction());
}

#[test]
fn figure5_error_breaks_fd_and_needs_phi() {
    let rel5 = figure5();
    // C → B no longer holds.
    let fds = mine_fdep(&rel5);
    assert!(!fds.contains(&Fd::new(AttrSet::single(2), 1)));
    // φV = 0 misses the {2,x} pair; φV = 0.5 recovers it.
    let strict = cluster_values(&rel5, 0.0, None);
    let lax = cluster_values(&rel5, 0.5, None);
    let two = rel5.dict().lookup("2").unwrap();
    let x = rel5.dict().lookup("x").unwrap();
    assert!(!strict.same_group(two, x));
    assert!(lax.same_group(two, x));
}

#[test]
fn full_pipeline_on_figure4() {
    let report = StructureMiner::new(MinerConfig::default()).analyze(&figure4());
    assert_eq!(report.value_groups.duplicates().count(), 2);
    assert!(!report.ranked.is_empty());
    // The top dependency must be promoted and include attribute C.
    let top = &report.ranked[0];
    assert!(top.fd.promoted);
    assert!(top.fd.attrs().contains(2));
}
