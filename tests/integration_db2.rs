//! Integration tests over the DB2-sample experiments (Section 8.1).

use dbmine::datagen::{db2_sample, inject_near_duplicates, Db2Spec};
use dbmine::fdmine::{mine_fdep, minimum_cover};
use dbmine::fdrank::{rad, rank_fds, rtr};
use dbmine::summaries::{cluster_values, find_duplicate_tuples, group_attributes};

#[test]
fn attribute_grouping_recovers_source_schemas() {
    // Figure 14: the grouping separates employee, department and project
    // attributes (modulo small attributes outside A_D).
    let rel = db2_sample(&Db2Spec::default()).relation;
    let values = cluster_values(&rel, 0.0, None);
    let grouping = group_attributes(&values, rel.n_attrs());
    assert!(
        grouping.attrs.len() >= 12,
        "|A_D| = {}",
        grouping.attrs.len()
    );

    let names = rel.attr_names();
    let clusters = grouping.clusters_at(3);
    // Find the cluster containing DepNo: it must hold DepName and MgrNo
    // but no project/person identifiers.
    let dep = rel.attr_id("DepNo").unwrap();
    let dept_cluster = clusters
        .iter()
        .find(|c| c.contains(&dep))
        .expect("DepNo participates");
    let labels: Vec<&str> = dept_cluster.iter().map(|&a| names[a].as_str()).collect();
    assert!(labels.contains(&"DepName"), "{labels:?}");
    assert!(labels.contains(&"MgrNo"), "{labels:?}");
    // Project identifiers live in a different group. (EmpNo may bridge
    // into the department group via the shared manager numbers.)
    assert!(!labels.contains(&"ProjNo"), "{labels:?}");
    assert!(!labels.contains(&"ProjName"), "{labels:?}");
}

#[test]
fn department_dependencies_rank_top_with_high_measures() {
    // Section 8.1.4 / Table 3: the department group has the highest
    // redundancy; its dependencies rank first with RAD/RTR ≈ 0.92+.
    let rel = db2_sample(&Db2Spec::default()).relation;
    let cover = minimum_cover(&mine_fdep(&rel));
    let values = cluster_values(&rel, 0.0, None);
    let grouping = group_attributes(&values, rel.n_attrs());
    let ranked = rank_fds(&cover, &grouping, 0.5);

    let dept_attrs = ["DepNo", "DepName", "MgrNo", "MajorProjNo", "AdminDepNo"];
    let top = &ranked[0];
    let names = rel.attr_names();
    for a in top.attrs().iter() {
        assert!(
            dept_attrs.contains(&names[a].as_str()),
            "top-ranked FD {} is not departmental",
            top.display(names)
        );
    }
    let measures = (rad(&rel, top.attrs()), rtr(&rel, top.attrs()));
    assert!(measures.0 > 0.9, "RAD = {}", measures.0);
    assert!(measures.1 > 0.9, "RTR = {}", measures.1);

    // Ordering property: the best departmental FD ranks above the best
    // purely-project FD (28 distinct projects < redundancy of 7 depts).
    let proj = rel.attr_id("ProjNo").unwrap();
    let first_proj = ranked.iter().position(|r| r.lhs.contains(proj));
    if let Some(p) = first_proj {
        assert!(p > 0, "project FD should not be the very top");
    }
}

#[test]
fn exact_duplicates_recovered_at_phi_zero() {
    let rel = db2_sample(&Db2Spec::default()).relation;
    let injected = inject_near_duplicates(&rel, 5, 0, 99);
    let report = find_duplicate_tuples(&injected.relation, 0.0);
    for d in &injected.injected {
        assert!(
            report.same_tight_group(d.original, d.duplicate, 1e-12),
            "exact duplicate {:?} missed",
            d
        );
    }
}

#[test]
fn near_duplicates_recovered_with_phi() {
    // Table 1's criterion (Section 8.1.2): a duplicate is discovered when
    // the dirty copy is associated with the *same summary* as its
    // original. (Tightness at τ is not the right extra filter here: τ
    // bounds Phase 1's per-merge loss, while the association loss to a
    // grown multi-tuple summary scales with the summary's weight, so
    // legitimately merged members can sit slightly above τ afterwards.)
    let rel = db2_sample(&Db2Spec::default()).relation;
    let injected = inject_near_duplicates(&rel, 5, 2, 7);
    let report = find_duplicate_tuples(&injected.relation, 0.2);
    let found = injected
        .injected
        .iter()
        .filter(|d| report.same_group(d.original, d.duplicate))
        .count();
    assert!(found >= 4, "only {found}/5 near-duplicates recovered");
}

#[test]
fn recovery_degrades_with_error_count() {
    // Table 1's central trend: more dirtied values ⇒ fewer recoveries.
    let rel = db2_sample(&Db2Spec::default()).relation;
    let recovered = |errors: usize| -> usize {
        (0..3u64)
            .map(|seed| {
                let injected = inject_near_duplicates(&rel, 5, errors, 30 + seed);
                let report = find_duplicate_tuples(&injected.relation, 0.2);
                let tau = report.threshold;
                injected
                    .injected
                    .iter()
                    .filter(|d| report.same_tight_group(d.original, d.duplicate, tau))
                    .count()
            })
            .sum()
    };
    let low = recovered(1);
    let high = recovered(10);
    assert!(low > high, "low-error {low} vs high-error {high}");
    assert!(
        low >= 13,
        "1-error duplicates nearly all found, got {low}/15"
    );
}

#[test]
fn fd_counts_match_paper_order_of_magnitude() {
    // Paper: FDEP found 106 FDs on R, minimum cover 14. Our synthetic
    // sample has the same structure but more accidental dependencies;
    // same order of magnitude, and the cover shrinks substantially.
    let rel = db2_sample(&Db2Spec::default()).relation;
    let fds = mine_fdep(&rel);
    let cover = minimum_cover(&fds);
    assert!((50..1000).contains(&fds.len()), "{} FDs", fds.len());
    assert!(
        cover.len() * 3 < fds.len(),
        "cover {} of {}",
        cover.len(),
        fds.len()
    );
}
