//! Integration tests for the extension modules: approximate FDs, MVDs,
//! FastFDs, join discovery, duplicate elimination, vertical partitioning
//! and position information content — exercised together on the
//! generated data sets.

use dbmine::baselines::join_candidates;
use dbmine::datagen::{
    db2_sample, inject_near_duplicates, synthetic, Db2Spec, PlantedFd, SyntheticSpec,
};
use dbmine::fdmine::{mine_approximate, mine_fastfds, mine_fdep, Fd};
use dbmine::fdrank::{column_content, redundant_cells};
use dbmine::relation::AttrSet;
use dbmine::summaries::{
    cluster_values, eliminate_duplicates, find_duplicate_tuples, group_attributes,
    vertical_partition,
};

#[test]
fn three_miners_agree_on_db2() {
    let rel = db2_sample(&Db2Spec::default()).relation;
    let mut fdep = mine_fdep(&rel);
    let mut fast = mine_fastfds(&rel);
    fdep.sort();
    fast.sort();
    assert_eq!(fdep, fast, "FDEP and FastFDs must agree on the DB2 sample");
}

#[test]
fn approximate_mining_tracks_injected_noise() {
    // Plant A0 → A1 exactly, then add 5% noise: exact mining loses the
    // dependency, approximate mining at ε = 0.1 recovers it.
    let spec = SyntheticSpec {
        n_tuples: 2_000,
        n_attrs: 4,
        fds: vec![PlantedFd {
            determinant: 0,
            dependents: vec![1],
        }],
        noise: 0.05,
        ..Default::default()
    };
    let rel = synthetic(&spec);
    let exact = mine_fdep(&rel);
    assert!(!exact.contains(&Fd::new(AttrSet::single(0), 1)));
    let approx = mine_approximate(&rel, 0.1, Some(2));
    let hit = approx
        .iter()
        .find(|f| f.fd == Fd::new(AttrSet::single(0), 1))
        .expect("noisy planted FD recovered as approximate");
    assert!((hit.error - 0.05).abs() < 0.03, "g3 = {}", hit.error);
}

#[test]
fn mvds_on_db2_include_key_splits() {
    // In the joined relation, EmpNo ↠ project attributes: each employee's
    // personal attributes combine freely with every project of their
    // department.
    let rel = db2_sample(&Db2Spec::default()).relation;
    let emp = rel.attr_id("EmpNo").unwrap();
    let proj_attrs: AttrSet = [
        "ProjNo",
        "ProjName",
        "RespEmpNo",
        "StartDate",
        "EndDate",
        "MajorProjNo",
    ]
    .iter()
    .filter_map(|n| rel.attr_id(n))
    .collect();
    assert!(dbmine::fdmine::mvd_holds(
        &rel,
        AttrSet::single(emp),
        proj_attrs
    ));
}

#[test]
fn join_discovery_recovers_star_schema() {
    let s = db2_sample(&Db2Spec::default());
    // All three base-table foreign keys surface at containment 1.0.
    let fk =
        |l: &dbmine::relation::Relation, la: &str, r: &dbmine::relation::Relation, ra: &str| {
            join_candidates(l, r, 2.0, 0.999).iter().any(|c| {
                c.left_attr == l.attr_id(la).unwrap() && c.right_attr == r.attr_id(ra).unwrap()
            })
        };
    assert!(fk(&s.employee, "WorkDepNo", &s.department, "DepNo"));
    assert!(fk(&s.project, "DeptNo", &s.department, "DepNo"));
    assert!(fk(&s.department, "MgrNo", &s.employee, "EmpNo"));
    assert!(fk(&s.project, "RespEmpNo", &s.employee, "EmpNo"));
}

#[test]
fn dedupe_restores_cardinality_after_injection() {
    let clean = db2_sample(&Db2Spec::default()).relation;
    let injected = inject_near_duplicates(&clean, 6, 1, 11);
    // φT = 0.1: wide enough for 1-error copies, tight enough not to
    // merge same-employee join rows (which differ in 6 of 19 attributes).
    let report = find_duplicate_tuples(&injected.relation, 0.1);
    let repaired = eliminate_duplicates(&injected.relation, &report, report.threshold);
    assert!(repaired.relation.n_tuples() < injected.relation.n_tuples());
    // Most of the planted copies are gone. A few genuinely similar
    // original tuples may merge too (same employee on near-identical
    // projects), so the floor is slightly below the clean cardinality.
    assert!(repaired.relation.n_tuples() + 10 >= clean.n_tuples());
    assert!(repaired.removed >= 4, "removed only {}", repaired.removed);
}

#[test]
fn vertical_partition_of_db2_reduces_storage() {
    let rel = db2_sample(&Db2Spec::default()).relation;
    let values = cluster_values(&rel, 0.0, None);
    let grouping = group_attributes(&values, rel.n_attrs());
    let vp = vertical_partition(&rel, &grouping, 3);
    assert!(vp.fragments.len() >= 3);
    assert!(
        vp.storage_reduction() > 0.3,
        "3-way split of a star join should cut ≥30% of cells, got {:.2}",
        vp.storage_reduction()
    );
    // Every fragment is a valid projection covering all tuples' data.
    let union: AttrSet = vp.fragments.iter().fold(AttrSet::EMPTY, |u, &f| u.union(f));
    assert_eq!(union, rel.all_attrs());
}

#[test]
fn information_content_flags_derivable_columns() {
    let rel = db2_sample(&Db2Spec::default()).relation;
    let dep_no = rel.attr_id("DepNo").unwrap();
    let dep_name = rel.attr_id("DepName").unwrap();
    let fds = vec![Fd::new(AttrSet::single(dep_no), dep_name)];
    // DepName is (almost) fully derivable from DepNo: every department
    // appears in many tuples, so all but ~one witness per department are
    // pinned.
    let c = column_content(&rel, &fds, dep_name);
    assert!(c < 0.25, "DepName content {c}");
    // And redundant_cells agrees with the count implied by 7 groups.
    let cells = redundant_cells(&rel, AttrSet::single(dep_no), dep_name);
    assert_eq!(cells.len(), 90 - 7);
}
