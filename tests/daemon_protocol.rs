//! Protocol tests for the `dbmined` daemon binary: request/response
//! framing, the error model (malformed input never kills the daemon),
//! and bit-identity between daemon `output` and single-shot CLI stdout.

use dbmine::server::{parse, Json};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

fn write_demo_csv() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dbmined_proto_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.csv");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "Name,City,Zip").unwrap();
    for (n, c, z) in [
        ("Pat", "Boston", "02139"),
        ("Sal", "Boston", "02139"),
        ("Kim", "Boston", "02139"),
        ("Kim", "Boston", "02139"),
        ("Ana", "Toronto", "M5S1A1"),
        ("Lee", "Toronto", "M5S1A1"),
    ] {
        writeln!(f, "{n},{c},{z}").unwrap();
    }
    path
}

/// A live `dbmined --stdio` child with line-oriented request/response.
struct DaemonProc {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl DaemonProc {
    fn spawn(extra_args: &[&str]) -> DaemonProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_dbmined"))
            .arg("--stdio")
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        DaemonProc {
            child,
            stdin,
            stdout,
        }
    }

    /// One request line in, one response line out.
    fn request(&mut self, line: &str) -> Json {
        writeln!(self.stdin, "{line}").unwrap();
        self.stdin.flush().unwrap();
        let mut resp = String::new();
        self.stdout.read_line(&mut resp).unwrap();
        assert!(
            resp.ends_with('\n'),
            "response is a complete line: {resp:?}"
        );
        parse(resp.trim_end()).unwrap_or_else(|e| panic!("invalid response JSON ({e}): {resp}"))
    }

    /// Closes stdin (EOF) and waits for a clean exit.
    fn finish(mut self) {
        drop(self.stdin);
        let status = self.child.wait().unwrap();
        assert!(status.success(), "daemon exits cleanly: {status}");
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok") == Some(&Json::Bool(true))
}

fn error_of(v: &Json) -> &str {
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(false)),
        "expected error: {v:?}"
    );
    v.get("error").and_then(Json::as_str).expect("error string")
}

fn output_of(v: &Json) -> &str {
    assert!(ok(v), "expected success: {v:?}");
    v.get("output")
        .and_then(Json::as_str)
        .expect("output string")
}

#[test]
fn analyze_via_path_and_inline_csv() {
    let csv = write_demo_csv();
    let mut d = DaemonProc::spawn(&[]);
    let v = d.request(&format!(
        "{{\"id\":1,\"cmd\":\"analyze\",\"path\":\"{}\"}}",
        csv.display()
    ));
    assert_eq!(v.get("id").and_then(Json::as_usize), Some(1));
    assert!(output_of(&v).contains("# column profile"));
    let rel = v.get("relation").expect("relation block");
    assert_eq!(rel.get("tuples").and_then(Json::as_usize), Some(6));
    assert_eq!(rel.get("attrs").and_then(Json::as_usize), Some(3));
    assert_eq!(
        rel.get("content_hash").and_then(Json::as_str).map(str::len),
        Some(16),
        "content hash is 16 hex digits"
    );
    assert!(v.get("view_stats").is_some());
    assert!(v.get("ctx_cache").is_some());

    let v = d.request(
        "{\"id\":\"inline\",\"cmd\":\"fds\",\"csv\":\"A,B\\nx,1\\nx,1\\ny,2\\n\",\"name\":\"t\"}",
    );
    assert_eq!(v.get("id").and_then(Json::as_str), Some("inline"));
    assert!(output_of(&v).contains("exact minimal dependencies"));
    d.finish();
}

#[test]
fn malformed_requests_error_and_daemon_keeps_serving() {
    let csv = write_demo_csv();
    let good = format!("{{\"cmd\":\"analyze\",\"path\":\"{}\"}}", csv.display());
    let mut d = DaemonProc::spawn(&[]);
    // Every handler's failure mode, injected in sequence — after each
    // error the daemon must still answer a good request.
    let cases: &[(&str, &str)] = &[
        ("{not json", "invalid JSON"),
        ("[1,2,3]", "must be a JSON object"),
        ("{\"id\":1}", "missing required field `cmd`"),
        (
            "{\"cmd\":\"frobnicate\",\"csv\":\"A\\nx\\n\"}",
            "unknown command",
        ),
        ("{\"cmd\":\"analyze\"}", "exactly one of `path` or `csv`"),
        (
            "{\"cmd\":\"analyze\",\"path\":\"a.csv\",\"csv\":\"A\\nx\\n\"}",
            "exactly one of `path` or `csv`",
        ),
        (
            "{\"cmd\":\"analyze\",\"csv\":\"A\\nx\\n\",\"wat\":1}",
            "unknown field `wat`",
        ),
        (
            "{\"cmd\":\"analyze\",\"path\":\"/nope/missing.csv\"}",
            "cannot read",
        ),
        // Degenerate CSV: ragged row, header only, empty input.
        (
            "{\"cmd\":\"fds\",\"csv\":\"A,B\\nonly-one\\n\"}",
            "cannot parse inline csv",
        ),
        (
            "{\"cmd\":\"fds\",\"csv\":\"A,B\\n\"}",
            "relation has no rows",
        ),
        ("{\"cmd\":\"fds\",\"csv\":\"\"}", "cannot parse inline csv"),
        // Out-of-range parameters, one per handler knob.
        (
            "{\"cmd\":\"analyze\",\"csv\":\"A\\nx\\n\",\"psi\":1.5}",
            "`psi` must be in [0, 1]",
        ),
        (
            "{\"cmd\":\"analyze\",\"csv\":\"A\\nx\\n\",\"phi_t\":-0.1}",
            "`phi_t` must be ≥ 0",
        ),
        (
            "{\"cmd\":\"duplicates\",\"csv\":\"A\\nx\\n\",\"phi_t\":\"hot\"}",
            "must be a number",
        ),
        (
            "{\"cmd\":\"fds\",\"csv\":\"A\\nx\\n\",\"approx\":-1}",
            "`approx` must be ≥ 0",
        ),
        (
            "{\"cmd\":\"fds\",\"csv\":\"A\\nx\\n\",\"max_lhs\":1.5}",
            "non-negative integer",
        ),
        (
            "{\"cmd\":\"partition\",\"csv\":\"A\\nx\\n\",\"k\":0}",
            "`k` must be at least 1",
        ),
        (
            "{\"cmd\":\"redesign\",\"csv\":\"A\\nx\\n\",\"steps\":0}",
            "`steps` must be at least 1",
        ),
        (
            "{\"cmd\":\"analyze\",\"csv\":\"A\\nx\\n\",\"threads\":-1}",
            "non-negative integer",
        ),
        (
            "{\"cmd\":\"analyze\",\"csv\":\"A\\nx\\n\",\"profile\":\"yes\"}",
            "must be a boolean",
        ),
        (
            "{\"cmd\":\"analyze\",\"path\":\"a.csv\",\"name\":\"t\"}",
            "only valid with inline `csv`",
        ),
    ];
    for (bad, expect) in cases {
        let v = d.request(bad);
        let msg = error_of(&v);
        assert!(
            msg.contains(expect),
            "for request {bad}: expected error containing {expect:?}, got {msg:?}"
        );
        assert!(
            ok(&d.request(&good)),
            "daemon must keep serving after {bad}"
        );
    }
    d.finish();
}

#[test]
fn wide_csv_is_rejected_not_panicked() {
    // 65 columns exceeds the AttrSet width; the daemon must refuse it
    // as a protocol error, not die.
    let header: Vec<String> = (0..65).map(|i| format!("C{i}")).collect();
    let row: Vec<&str> = (0..65).map(|_| "x").collect();
    let csv = format!("{}\\n{}\\n", header.join(","), row.join(","));
    let mut d = DaemonProc::spawn(&[]);
    let v = d.request(&format!("{{\"cmd\":\"analyze\",\"csv\":\"{csv}\"}}"));
    assert!(error_of(&v).contains("cannot parse inline csv"));
    assert!(ok(&d.request("{\"cmd\":\"ping\"}")));
    d.finish();
}

#[test]
fn daemon_output_is_bit_identical_to_cli() {
    let csv = write_demo_csv();
    let path = csv.to_str().unwrap();
    let cli = |args: &[&str]| -> String {
        let out = Command::new(env!("CARGO_BIN_EXE_dbmine"))
            .args(args)
            .output()
            .expect("cli runs");
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    let mut d = DaemonProc::spawn(&[]);
    // analyze, defaults: the daemon embeds the exact CLI stdout.
    let cli_analyze = cli(&["analyze", path]);
    let v = d.request(&format!("{{\"cmd\":\"analyze\",\"path\":\"{path}\"}}"));
    assert_eq!(output_of(&v), cli_analyze);
    // fds, exact and approximate — and the second analyze (warm) must
    // still match byte-for-byte.
    let cli_fds = cli(&["fds", path]);
    let v = d.request(&format!("{{\"cmd\":\"fds\",\"path\":\"{path}\"}}"));
    assert_eq!(output_of(&v), cli_fds);
    let cli_fds_approx = cli(&["fds", path, "--approx", "0.2"]);
    let v = d.request(&format!(
        "{{\"cmd\":\"fds\",\"path\":\"{path}\",\"approx\":0.2}}"
    ));
    assert_eq!(output_of(&v), cli_fds_approx);
    let v = d.request(&format!("{{\"cmd\":\"analyze\",\"path\":\"{path}\"}}"));
    assert_eq!(v.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(output_of(&v), cli_analyze, "warm output must not drift");
    // redesign goes through the derived-context chain in the daemon and
    // the CLI alike.
    let cli_redesign = cli(&["redesign", path]);
    let v = d.request(&format!("{{\"cmd\":\"redesign\",\"path\":\"{path}\"}}"));
    assert_eq!(output_of(&v), cli_redesign);
    d.finish();
}

#[test]
fn warm_request_reports_zero_new_view_builds() {
    let csv = write_demo_csv();
    let path = csv.to_str().unwrap();
    let mut d = DaemonProc::spawn(&[]);
    let builds = |v: &Json| {
        v.get("view_stats")
            .and_then(|s| s.get("builds"))
            .and_then(Json::as_usize)
            .unwrap()
    };
    let v1 = d.request(&format!("{{\"cmd\":\"analyze\",\"path\":\"{path}\"}}"));
    assert_eq!(v1.get("cached"), Some(&Json::Bool(false)));
    let v2 = d.request(&format!("{{\"cmd\":\"analyze\",\"path\":\"{path}\"}}"));
    assert_eq!(v2.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(
        builds(&v1),
        builds(&v2),
        "second identical request must perform zero view builds"
    );
    let cache = v2.get("ctx_cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_usize), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_usize), Some(1));
    d.finish();
}

#[test]
fn shutdown_request_stops_the_daemon() {
    let mut d = DaemonProc::spawn(&[]);
    assert_eq!(
        d.request("{\"cmd\":\"ping\"}")
            .get("output")
            .and_then(Json::as_str),
        Some("pong")
    );
    let v = d.request("{\"id\":7,\"cmd\":\"shutdown\"}");
    assert!(ok(&v));
    let status = d.child.wait().unwrap();
    assert!(status.success(), "shutdown exits cleanly");
}

#[test]
fn tcp_mode_serves_concurrent_connections_and_shuts_down() {
    use std::net::TcpStream;
    let mut child = Command::new(env!("CARGO_BIN_EXE_dbmined"))
        .args(["--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut banner = String::new();
    stderr.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("dbmined listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_string();

    let connect = || {
        let stream = TcpStream::connect(&addr).expect("connects");
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    };
    let roundtrip = |stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str| {
        writeln!(stream, "{req}").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        parse(resp.trim_end()).expect("valid response JSON")
    };
    let (mut s1, mut r1) = connect();
    let (mut s2, mut r2) = connect();
    // Both connections are served; the second relation request hits the
    // LRU warmed by the first connection.
    let v = roundtrip(
        &mut s1,
        &mut r1,
        "{\"cmd\":\"fds\",\"csv\":\"A,B\\nx,1\\nx,1\\n\"}",
    );
    assert_eq!(v.get("cached"), Some(&Json::Bool(false)));
    let v = roundtrip(
        &mut s2,
        &mut r2,
        "{\"cmd\":\"fds\",\"csv\":\"A,B\\nx,1\\nx,1\\n\"}",
    );
    assert_eq!(
        v.get("cached"),
        Some(&Json::Bool(true)),
        "connections share one context LRU"
    );
    // Shutdown from one connection stops the whole daemon.
    let v = roundtrip(&mut s2, &mut r2, "{\"cmd\":\"shutdown\"}");
    assert!(ok(&v));
    let status = child.wait().unwrap();
    assert!(status.success(), "tcp daemon exits cleanly: {status}");
}

#[test]
fn profiled_request_embeds_report() {
    let csv = write_demo_csv();
    let mut d = DaemonProc::spawn(&[]);
    let v = d.request(&format!(
        "{{\"cmd\":\"fds\",\"path\":\"{}\",\"profile\":true}}",
        csv.display()
    ));
    let report = v.get("report").expect("profiled response embeds a report");
    assert!(report.get("schema_version").is_some());
    assert!(report.get("counters").is_some());
    assert!(report.get("spans").is_some());
    // Unprofiled requests must not carry one.
    let v = d.request(&format!(
        "{{\"cmd\":\"fds\",\"path\":\"{}\"}}",
        csv.display()
    ));
    assert!(v.get("report").is_none());
    d.finish();
}
