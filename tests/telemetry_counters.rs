//! Exact-value counter tests on tiny hand-checked inputs, plus a pin
//! that collecting telemetry does not change mining output.
//!
//! Counters are process-global, so this suite lives in its own
//! integration-test binary (its own process) and serializes its tests
//! on one mutex; deltas are taken while the lock is held. With the
//! `telemetry` feature compiled out every delta is 0 and the tests
//! assert exactly that, so the suite is meaningful in both CI legs.

use dbmine::context::AnalysisCtx;
use dbmine::fdmine::{mine_tane, TaneOptions};
use dbmine::ib::{aib, Dcf};
use dbmine::infotheory::SparseDist;
use dbmine::limbo::LimboParams;
use dbmine::relation::paper::figure4;
use dbmine::relation::{AttrSet, RelationBuilder};
use dbmine::summaries::{
    cluster_values_ctx, find_duplicate_tuples_ctx, tuple_summary_assignment_ctx,
};
use dbmine::telemetry::{self, Counter, CounterSnapshot};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn with_deltas<R>(f: impl FnOnce() -> R) -> (R, CounterSnapshot) {
    let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let before = telemetry::snapshot();
    let r = f();
    let d = telemetry::snapshot().delta(&before);
    (r, d)
}

/// Expected value when telemetry is compiled in; 0 when it is not.
fn expect(n: u64) -> u64 {
    if telemetry::compiled() {
        n
    } else {
        0
    }
}

fn singleton(support: &[(u32, f64)], weight: f64) -> Dcf {
    let mut d = SparseDist::from_pairs(support.to_vec());
    d.normalize();
    Dcf::singleton(weight, d)
}

#[test]
fn aib_on_four_values_performs_exactly_three_merges() {
    // Agglomerating 4 objects down to k = 1 is exactly 3 pair merges,
    // each one `Dcf::merge_in_place` call; every heap pop that commits a
    // merge is one nearest-neighbor-cache hit.
    let inputs = vec![
        singleton(&[(0, 1.0)], 0.25),
        singleton(&[(1, 1.0)], 0.25),
        singleton(&[(0, 0.5), (2, 0.5)], 0.25),
        singleton(&[(3, 1.0)], 0.25),
    ];
    let (result, d) = with_deltas(|| aib(inputs, 1));
    assert_eq!(result.clusters.len(), 1);
    assert_eq!(result.dendrogram.merges().len(), 3);
    assert_eq!(d.get(Counter::DcfMerges), expect(3));
    assert_eq!(d.get(Counter::NnCacheHits), expect(3));
}

#[test]
fn tane_lattice_sizes_on_a_three_attribute_relation() {
    // Hand-checked relation where no FD holds and no proper subset of
    // {A,B,C} is a key:
    //   level 1 visits {A},{B},{C}          → 3 lattice nodes
    //   level 2 visits {AB},{AC},{BC}       → 3 nodes (3 products built)
    //   level 3 visits {ABC}                → 1 node  (1 product built)
    // {ABC} is a key, but C+({ABC}) ∖ {ABC} is empty, so nothing is
    // emitted and the next level is empty: 7 nodes, 4 products total.
    let mut b = RelationBuilder::new("t3", &["A", "B", "C"]);
    for row in [
        ["a", "x", "p"],
        ["a", "x", "q"],
        ["b", "x", "p"],
        ["b", "y", "q"],
        ["a", "y", "p"],
        ["b", "y", "p"],
    ] {
        b.push_row_strs(&row);
    }
    let rel = b.build();
    let (fds, d) = with_deltas(|| mine_tane(&rel, TaneOptions::default()));
    assert!(fds.is_empty(), "no FD holds in this relation: {fds:?}");
    assert_eq!(d.get(Counter::TaneLatticeNodes), expect(7));
    assert_eq!(d.get(Counter::PartitionProducts), expect(4));
    // The key-pruning minimality check never ran (no emissions).
    assert_eq!(d.get(Counter::TanePruneCacheHits), 0);
    assert_eq!(d.get(Counter::TanePruneCacheMisses), 0);
}

#[test]
fn fdrank_counts_figure4_redundant_cells() {
    // Figure 4: under C → B, the three tuples sharing C = x all carry
    // B = 2; the first is the witness, the other two are redundant.
    let rel = figure4();
    let (cells, d) = with_deltas(|| dbmine::fdrank::redundant_cells(&rel, AttrSet::single(2), 1));
    assert_eq!(cells.len(), 2);
    assert_eq!(d.get(Counter::FdrankRedundantCells), expect(2));
}

#[test]
fn double_clustering_builds_the_value_index_exactly_once() {
    // Regression: the Double Clustering path used to rebuild the
    // ValueIndex once per stage. Through one context the whole run
    // materializes exactly three views — TupleRows and I(T;V) for the
    // tuple pass, the ValueIndex for the value pass; re-expressing
    // values over the tuple clusters reuses the cached index.
    let rel = figure4();
    let ctx = AnalysisCtx::of(&rel);
    let (_, d) = with_deltas(|| {
        let (assignment, _) = tuple_summary_assignment_ctx(&ctx, LimboParams::with_phi(0.5));
        cluster_values_ctx(&ctx, LimboParams::with_phi(0.5), Some(&assignment))
    });
    assert_eq!(ctx.view_stats().builds, 3, "{:?}", ctx.view_stats());
    assert_eq!(d.get(Counter::ViewBuilds), expect(3));

    // A second full pass over the same context builds nothing new.
    let before = ctx.view_stats();
    let (assignment, _) = tuple_summary_assignment_ctx(&ctx, LimboParams::with_phi(0.5));
    let _ = cluster_values_ctx(&ctx, LimboParams::with_phi(0.5), Some(&assignment));
    let after = ctx.view_stats();
    assert_eq!(after.builds, before.builds);
    assert!(after.hits > before.hits);
}

#[test]
fn analyze_builds_each_shared_view_exactly_once() {
    use dbmine::{FdMiner, MinerConfig, StructureMiner};
    let rel = figure4();
    let ctx = AnalysisCtx::of(&rel);
    let miner = StructureMiner::new(MinerConfig {
        fd_miner: FdMiner::Tane,
        ..Default::default()
    });
    let (report, d) = with_deltas(|| miner.analyze_ctx(&ctx));

    // Exact ledger of one analyze run over a fresh context:
    //   1     column-profile vector
    //   m     single-attribute projection-memo entries (profiling)
    //   2     TupleRows + I(T;V)          (duplicate-tuple discovery)
    //   2     ValueIndex + I(V;T)         (value clustering)
    //   m     single-attribute partitions (TANE seed)
    //   k     distinct multi-attribute projections (RAD/RTR of the
    //         ranked cover; single-attribute sets hit the memo, and
    //         RTR always hits the set RAD just created)
    let m = rel.n_attrs() as u64;
    let multi_sets: std::collections::HashSet<u64> = report
        .ranked
        .iter()
        .map(|r| r.fd.attrs())
        .filter(|s| s.len() >= 2)
        .map(|s| s.bits())
        .collect();
    let expected = 1 + m + 2 + 2 + m + multi_sets.len() as u64;
    let s = ctx.view_stats();
    assert_eq!(s.builds, expected, "{s:?}");
    assert!(s.hits > 0, "{s:?}");
    assert_eq!(d.get(Counter::ViewBuilds), expect(expected));
    if telemetry::compiled() {
        assert!(d.get(Counter::ViewCacheHits) > 0);
    }

    // Re-analyzing over the same context materializes nothing and
    // reproduces the report bit-for-bit.
    let again = miner.analyze_ctx(&ctx);
    assert_eq!(ctx.view_stats().builds, expected);
    assert_eq!(report.render(&rel), again.render(&rel));
}

#[test]
fn sharded_phase1_counts_ingests_and_merges_exactly() {
    let rel = figure4();
    let ctx = AnalysisCtx::of(&rel);

    // Through the user-facing path: figure 4's five tuples fit one auto
    // chunk, so a sharded duplicates run ingests exactly one shard and
    // the merge stage never runs (single-chunk ≡ classic build).
    let (_, d) =
        with_deltas(|| find_duplicate_tuples_ctx(&ctx, LimboParams::with_phi(0.0).shards(Some(4))));
    assert_eq!(d.get(Counter::ShardIngests), expect(1));
    assert_eq!(d.get(Counter::TreeMerges), 0);

    // An explicit 3-chunk plan (5 objects, chunks of 2) ingests three
    // shards, and the merge stage re-inserts all three shard trees.
    let objects = dbmine::limbo::tuple_dcfs(&rel);
    let mi = ctx.tuple_mutual_information();
    let plan = dbmine::limbo::ShardPlan::with_chunk_size(objects.len(), 2);
    let (_, d) = with_deltas(|| {
        dbmine::limbo::phase1_sharded(&objects, mi, LimboParams::with_phi(0.0), &plan, 1)
    });
    assert_eq!(d.get(Counter::ShardIngests), expect(3));
    assert_eq!(d.get(Counter::TreeMerges), expect(3));
}

#[test]
fn collecting_spans_does_not_change_mining_output() {
    use dbmine::{MinerConfig, StructureMiner};
    let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let rel = figure4();
    let miner = StructureMiner::new(MinerConfig::default());
    let quiet = miner.analyze(&rel).render(&rel);
    telemetry::begin();
    let collected = miner.analyze(&rel).render(&rel);
    let report = telemetry::finish();
    assert_eq!(quiet, collected, "span collection must not alter results");
    if telemetry::compiled() {
        let analyze = report.find("miner.analyze").expect("pipeline span");
        assert!(analyze.find("summaries.duplicate_tuples").is_some());
        assert!(analyze.find("limbo.phase1").is_some());
        assert!(report.counters.get(Counter::JsEvals) > 0);
    } else {
        assert!(report.roots.is_empty());
    }
}
