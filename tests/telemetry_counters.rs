//! Exact-value counter tests on tiny hand-checked inputs, plus a pin
//! that collecting telemetry does not change mining output.
//!
//! Counters are process-global, so this suite lives in its own
//! integration-test binary (its own process) and serializes its tests
//! on one mutex; deltas are taken while the lock is held. With the
//! `telemetry` feature compiled out every delta is 0 and the tests
//! assert exactly that, so the suite is meaningful in both CI legs.

use dbmine::fdmine::{mine_tane, TaneOptions};
use dbmine::ib::{aib, Dcf};
use dbmine::infotheory::SparseDist;
use dbmine::relation::paper::figure4;
use dbmine::relation::{AttrSet, RelationBuilder};
use dbmine::telemetry::{self, Counter, CounterSnapshot};
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

fn with_deltas<R>(f: impl FnOnce() -> R) -> (R, CounterSnapshot) {
    let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let before = telemetry::snapshot();
    let r = f();
    let d = telemetry::snapshot().delta(&before);
    (r, d)
}

/// Expected value when telemetry is compiled in; 0 when it is not.
fn expect(n: u64) -> u64 {
    if telemetry::compiled() {
        n
    } else {
        0
    }
}

fn singleton(support: &[(u32, f64)], weight: f64) -> Dcf {
    let mut d = SparseDist::from_pairs(support.to_vec());
    d.normalize();
    Dcf::singleton(weight, d)
}

#[test]
fn aib_on_four_values_performs_exactly_three_merges() {
    // Agglomerating 4 objects down to k = 1 is exactly 3 pair merges,
    // each one `Dcf::merge_in_place` call; every heap pop that commits a
    // merge is one nearest-neighbor-cache hit.
    let inputs = vec![
        singleton(&[(0, 1.0)], 0.25),
        singleton(&[(1, 1.0)], 0.25),
        singleton(&[(0, 0.5), (2, 0.5)], 0.25),
        singleton(&[(3, 1.0)], 0.25),
    ];
    let (result, d) = with_deltas(|| aib(inputs, 1));
    assert_eq!(result.clusters.len(), 1);
    assert_eq!(result.dendrogram.merges().len(), 3);
    assert_eq!(d.get(Counter::DcfMerges), expect(3));
    assert_eq!(d.get(Counter::NnCacheHits), expect(3));
}

#[test]
fn tane_lattice_sizes_on_a_three_attribute_relation() {
    // Hand-checked relation where no FD holds and no proper subset of
    // {A,B,C} is a key:
    //   level 1 visits {A},{B},{C}          → 3 lattice nodes
    //   level 2 visits {AB},{AC},{BC}       → 3 nodes (3 products built)
    //   level 3 visits {ABC}                → 1 node  (1 product built)
    // {ABC} is a key, but C+({ABC}) ∖ {ABC} is empty, so nothing is
    // emitted and the next level is empty: 7 nodes, 4 products total.
    let mut b = RelationBuilder::new("t3", &["A", "B", "C"]);
    for row in [
        ["a", "x", "p"],
        ["a", "x", "q"],
        ["b", "x", "p"],
        ["b", "y", "q"],
        ["a", "y", "p"],
        ["b", "y", "p"],
    ] {
        b.push_row_strs(&row);
    }
    let rel = b.build();
    let (fds, d) = with_deltas(|| mine_tane(&rel, TaneOptions::default()));
    assert!(fds.is_empty(), "no FD holds in this relation: {fds:?}");
    assert_eq!(d.get(Counter::TaneLatticeNodes), expect(7));
    assert_eq!(d.get(Counter::PartitionProducts), expect(4));
    // The key-pruning minimality check never ran (no emissions).
    assert_eq!(d.get(Counter::TanePruneCacheHits), 0);
    assert_eq!(d.get(Counter::TanePruneCacheMisses), 0);
}

#[test]
fn fdrank_counts_figure4_redundant_cells() {
    // Figure 4: under C → B, the three tuples sharing C = x all carry
    // B = 2; the first is the witness, the other two are redundant.
    let rel = figure4();
    let (cells, d) = with_deltas(|| dbmine::fdrank::redundant_cells(&rel, AttrSet::single(2), 1));
    assert_eq!(cells.len(), 2);
    assert_eq!(d.get(Counter::FdrankRedundantCells), expect(2));
}

#[test]
fn collecting_spans_does_not_change_mining_output() {
    use dbmine::{MinerConfig, StructureMiner};
    let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let rel = figure4();
    let miner = StructureMiner::new(MinerConfig::default());
    let quiet = miner.analyze(&rel).render(&rel);
    telemetry::begin();
    let collected = miner.analyze(&rel).render(&rel);
    let report = telemetry::finish();
    assert_eq!(quiet, collected, "span collection must not alter results");
    if telemetry::compiled() {
        let analyze = report.find("miner.analyze").expect("pipeline span");
        assert!(analyze.find("summaries.duplicate_tuples").is_some());
        assert!(analyze.find("limbo.phase1").is_some());
        assert!(report.counters.get(Counter::JsEvals) > 0);
    } else {
        assert!(report.roots.is_empty());
    }
}
