//! Concurrency tests for the daemon's shared-context contract, driven
//! against the in-process [`Daemon`]: N threads sharing one relation
//! build every view exactly once, the LRU evicts under capacity
//! pressure without corrupting results, and warm responses are
//! byte-identical to cold ones.

use dbmine::context::AnalysisCtx;
use dbmine::server::{parse, Daemon, Json};
use std::sync::Arc;

fn demo_csv() -> String {
    let mut csv = String::from("Name,City,Zip\\n");
    for (n, c, z) in [
        ("Pat", "Boston", "02139"),
        ("Sal", "Boston", "02139"),
        ("Kim", "Boston", "02139"),
        ("Ana", "Toronto", "M5S1A1"),
        ("Lee", "Toronto", "M5S1A1"),
    ] {
        csv.push_str(&format!("{n},{c},{z}\\n"));
    }
    csv
}

fn request(cmd: &str, csv: &str) -> String {
    format!("{{\"cmd\":\"{cmd}\",\"csv\":\"{csv}\",\"name\":\"t\"}}")
}

fn response(d: &Daemon, line: &str) -> Json {
    let h = d.handle_line(line);
    assert!(!h.shutdown);
    let v = parse(&h.line).expect("valid response JSON");
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(true)),
        "request failed: {}",
        h.line
    );
    v
}

fn builds(v: &Json) -> usize {
    v.get("view_stats")
        .and_then(|s| s.get("builds"))
        .and_then(Json::as_usize)
        .unwrap()
}

fn output(v: &Json) -> String {
    v.get("output").and_then(Json::as_str).unwrap().to_string()
}

#[test]
fn warm_context_serves_n_threads_with_zero_new_builds() {
    let d = Arc::new(Daemon::new(4));
    let csv = demo_csv();
    // Warm up every view the three commands need.
    let warm_analyze = output(&response(&d, &request("analyze", &csv)));
    let warm_fds = output(&response(&d, &request("fds", &csv)));
    let baseline = builds(&response(&d, &request("analyze", &csv)));
    std::thread::scope(|s| {
        for i in 0..8 {
            let d = Arc::clone(&d);
            let csv = csv.clone();
            let (warm_analyze, warm_fds) = (warm_analyze.clone(), warm_fds.clone());
            s.spawn(move || {
                for _ in 0..4 {
                    let cmd = if i % 2 == 0 { "analyze" } else { "fds" };
                    let v = response(&d, &request(cmd, &csv));
                    assert_eq!(v.get("cached"), Some(&Json::Bool(true)));
                    let expect = if cmd == "analyze" {
                        &warm_analyze
                    } else {
                        &warm_fds
                    };
                    assert_eq!(&output(&v), expect, "warm output drifted under concurrency");
                }
            });
        }
    });
    let after = builds(&response(&d, &request("analyze", &csv)));
    assert_eq!(baseline, after, "concurrent warm requests rebuilt views");
}

#[test]
fn cold_concurrent_requests_share_exactly_one_context() {
    // No warm-up: 8 threads race the same relation. The cache builds
    // under its lock, so exactly one context is admitted and every view
    // is built exactly once.
    let d = Arc::new(Daemon::new(4));
    let csv = demo_csv();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let d = Arc::clone(&d);
            let csv = csv.clone();
            s.spawn(move || {
                response(&d, &request("analyze", &csv));
            });
        }
    });
    let stats = d.cache().stats();
    assert_eq!(stats.misses, 1, "exactly one cold admission");
    assert_eq!(stats.hits, 7, "every other request hit the shared context");
    assert_eq!(stats.entries, 1);
    // The shared context built each analyze view exactly once: a fresh
    // context run of the same command builds the same number of views
    // as the daemon's 8 concurrent requests did in total.
    let solo = {
        use dbmine::relation::csv::read_relation;
        let rel = read_relation(csv.replace("\\n", "\n").as_bytes(), "t").unwrap();
        let ctx = AnalysisCtx::from(rel);
        let config = dbmine::render::analyze_config(
            None,
            None,
            None,
            None,
            1,
            None,
            dbmine::fdrank::ScoreKind::G3,
        );
        dbmine::render::run_analyze(&ctx, &config);
        ctx.view_stats().builds
    };
    let shared = builds(&response(&d, &request("analyze", &csv)));
    assert_eq!(
        shared as u64, solo,
        "8 concurrent cold requests must build no more views than one request"
    );
}

#[test]
fn lru_evicts_under_capacity_pressure_and_results_stay_correct() {
    let d = Daemon::new(2);
    // Three distinct relations cycling through a capacity-2 cache.
    let rels: Vec<String> = (0..3)
        .map(|i| format!("A,B\\na{i},b\\na{i},b\\nc{i},d\\n"))
        .collect();
    let cold: Vec<String> = rels
        .iter()
        .map(|csv| output(&response(&d, &request("fds", csv))))
        .collect();
    // First relation was evicted by the third: requesting it again is a
    // miss, but the output must be byte-identical to the cold run.
    let v = response(&d, &request("fds", &rels[0]));
    assert_eq!(
        v.get("cached"),
        Some(&Json::Bool(false)),
        "rel 0 was evicted"
    );
    assert_eq!(
        output(&v),
        cold[0],
        "evicted-and-rebuilt output must not drift"
    );
    let stats = d.cache().stats();
    assert_eq!(stats.entries, 2);
    assert!(
        stats.evictions >= 2,
        "capacity 2 with 4 admissions evicts ≥ 2"
    );
    // The most recent two relations are resident.
    let v = response(&d, &request("fds", &rels[0]));
    assert_eq!(v.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(output(&v), cold[0]);
}

#[test]
fn mixed_commands_share_one_context_per_relation() {
    let d = Daemon::new(4);
    let csv = demo_csv();
    for cmd in ["analyze", "duplicates", "fds", "partition", "redesign"] {
        response(&d, &request(cmd, &csv));
    }
    let stats = d.cache().stats();
    assert_eq!(stats.misses, 1, "five commands, one relation, one context");
    assert_eq!(stats.hits, 4);
    // And the whole battery again, warm: zero new view builds.
    let before = builds(&response(&d, &request("analyze", &csv)));
    for cmd in ["analyze", "duplicates", "fds", "partition", "redesign"] {
        response(&d, &request(cmd, &csv));
    }
    let after = builds(&response(&d, &request("analyze", &csv)));
    assert_eq!(before, after, "warm command battery rebuilt views");
}
