#!/usr/bin/env python3
"""Gate on the telemetry span tree of a profiled CLI run.

Reduces a ``--profile`` RunReport to its structural skeleton — span
names, call counts and nesting — and compares it against a committed
reference. The smoke input (results/db2_sample.csv) is deterministic,
so a phase that disappears from the profile, or a call count that
drifts, means the pipeline's shape changed and the reference must be
consciously re-baselined.

Usage:
    span_gate.py [--update] REFERENCE PROFILE.json
    span_gate.py [--update] --jsonl REFERENCE RESPONSES.jsonl

Exits non-zero when a reference span is missing or its call count
differs; spans present only in the fresh profile are reported as
warnings (new instrumentation is fine until baselined). ``--update``
rewrites the reference skeleton from PROFILE.json. Profiles from a
build without the `telemetry` feature are skipped with a warning.

With ``--jsonl`` the input is a `dbmined` response stream (one JSON
object per line): the embedded ``report`` of every profiled response is
extracted and the gate runs on the concatenation of their span roots —
pinning the per-request span skeleton of the daemon (`serve.analyze`,
`serve.fds`, …) the same way the CLI gate pins the pipeline's.
"""

import json
import sys


def skeleton(spans):
    return [
        {
            "name": s["name"],
            "calls": s["calls"],
            "children": skeleton(s.get("children", [])),
        }
        for s in spans
    ]


def compare(reference, fresh, path, failures, warnings):
    fresh_by_name = {}
    for s in fresh:
        fresh_by_name.setdefault(s["name"], []).append(s)
    for r in reference:
        here = f"{path}/{r['name']}"
        candidates = fresh_by_name.get(r["name"], [])
        if not candidates:
            failures.append(f"span {here} disappeared from the profile")
            continue
        s = candidates.pop(0)
        if s["calls"] != r["calls"]:
            failures.append(
                f"span {here}: call count drifted: reference {r['calls']}, fresh {s['calls']}"
            )
        compare(r["children"], s["children"], here, failures, warnings)
    known = {r["name"] for r in reference}
    for s in fresh:
        if s["name"] not in known:
            warnings.append(f"new span {path}/{s['name']} (x{s['calls']}) not in reference")


def daemon_reports(path):
    """The embedded RunReports of every profiled response in a
    `dbmined` response stream (responses without one are skipped)."""
    reports = []
    with open(path) as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                response = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"ERROR: {path}:{n}: not a JSON response line: {e}", file=sys.stderr)
                sys.exit(2)
            report = response.get("report")
            if report is not None:
                reports.append(report)
    return reports


def main(argv):
    flags = {a for a in argv if a in ("--update", "--jsonl")}
    args = [a for a in argv if a not in flags]
    update = "--update" in flags
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    ref_path, profile_path = args

    if "--jsonl" in flags:
        reports = daemon_reports(profile_path)
        if not reports:
            print(f"ERROR: {profile_path}: no profiled responses found", file=sys.stderr)
            return 2
    else:
        with open(profile_path) as f:
            reports = [json.load(f)]
    if not all(r.get("telemetry_compiled", False) for r in reports):
        print(f"WARNING: {profile_path}: telemetry not compiled in — skipping span gate")
        return 0
    fresh = [s for r in reports for s in skeleton(r.get("spans", []))]

    if update:
        with open(ref_path, "w") as f:
            json.dump(fresh, f, indent=2)
            f.write("\n")
        print(f"wrote {ref_path}")
        return 0

    with open(ref_path) as f:
        reference = json.load(f)

    failures, warnings = [], []
    compare(reference, fresh, "", failures, warnings)
    for w in warnings:
        print(f"WARNING: {w}")
    if failures:
        print(f"span tree drift against {ref_path}:")
        for f_ in failures:
            print(f"  {f_}")
        print("If the change is intended, re-baseline with --update and commit.")
        return 1

    def count(nodes):
        return sum(1 + count(n["children"]) for n in nodes)

    print(f"span tree matches the reference ({count(reference)} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
