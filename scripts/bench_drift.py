#!/usr/bin/env python3
"""Gate on telemetry-counter drift between fresh bench runs and a
committed reference.

The bench runners embed a telemetry RunReport in their BENCH_*.json
output; the counter totals in that report are deterministic for the
quick/smoke workloads (fixed seeds, fixed sizes), so any change is a
real behavioural change in the kernels — an extra partition product, a
lost cache hit, a view rebuilt — and should be either fixed or
explicitly re-baselined.

Usage:
    bench_drift.py [--update] REFERENCE NAME=FRESH.json [NAME=FRESH.json ...]

Compares ``telemetry.counters`` of each fresh file against
``REFERENCE[NAME]`` and exits non-zero on any mismatch. ``--update``
rewrites the reference from the fresh files instead. Fresh files from a
build without the `telemetry` feature (``telemetry_compiled: false``)
are skipped with a warning — counters are all zero there and would only
mask drift.
"""

import json
import sys


def load_counters(path):
    with open(path) as f:
        bench = json.load(f)
    telemetry = bench.get("telemetry", {})
    if not telemetry.get("telemetry_compiled", False):
        return None
    return telemetry.get("counters", {})


def main(argv):
    args = [a for a in argv if a != "--update"]
    update = len(args) != len(argv)
    if len(args) < 2 or any("=" not in a for a in args[1:]):
        print(__doc__, file=sys.stderr)
        return 2
    ref_path = args[0]
    fresh = {}
    for spec in args[1:]:
        name, _, path = spec.partition("=")
        counters = load_counters(path)
        if counters is None:
            print(f"WARNING: {path}: telemetry not compiled in — skipping '{name}'")
            continue
        fresh[name] = counters

    if update:
        with open(ref_path, "w") as f:
            json.dump(fresh, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {ref_path} ({', '.join(sorted(fresh)) or 'nothing'})")
        return 0

    with open(ref_path) as f:
        reference = json.load(f)

    failures = []
    for name, counters in sorted(fresh.items()):
        if name not in reference:
            failures.append(f"{name}: not in reference {ref_path} (run with --update?)")
            continue
        expected = reference[name]
        for key in sorted(set(expected) | set(counters)):
            want, got = expected.get(key), counters.get(key)
            if want != got:
                failures.append(f"{name}: counter '{key}' drifted: reference {want}, fresh {got}")
    if failures:
        print(f"counter drift against {ref_path}:")
        for f_ in failures:
            print(f"  {f_}")
        print("If the change is intended, re-baseline with --update and commit.")
        return 1
    checked = sum(len(reference.get(n, {})) for n in fresh)
    print(f"bench counters match the reference ({len(fresh)} benches, {checked} counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
