//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace-local crate re-implements the subset of proptest that the
//! dbmine test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * numeric range and tuple strategies,
//! * [`collection::vec`], [`option::weighted`] and
//!   [`string::string_regex`] (character-class patterns only).
//!
//! Unlike real proptest there is no shrinking and no persistence of
//! failing seeds — each test runs a fixed number of deterministic cases
//! derived from the test's name, so failures reproduce on every run.

pub mod strategy {
    //! Value-generation strategies.
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod test_runner {
    //! The per-test configuration and deterministic RNG.
    use rand::RngCore;

    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic per-test generator (SplitMix64 seeded from the
    /// test name, so every run replays the same cases).
    #[derive(Clone, Debug)]
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// A generator seeded from `name` (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(h))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            self.0.next_f64()
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: `[lo, hi)` element counts.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some(inner)` with probability `p`, else `None`.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> WeightedOption<S> {
        assert!((0.0..=1.0).contains(&p), "weight must be a probability");
        WeightedOption { p, inner }
    }

    /// See [`weighted`].
    #[derive(Clone, Copy, Debug)]
    pub struct WeightedOption<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.p {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod string {
    //! String strategies from (a small subset of) regex syntax.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Pattern parse failure.
    #[derive(Clone, Debug)]
    pub struct Error(String);

    impl core::fmt::Display for Error {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Strategy for strings matching `pattern`.
    ///
    /// Supported syntax: a single character class `[...]` (literal
    /// characters and `a-z` ranges) followed by an optional `{lo,hi}`
    /// repetition (default exactly one). This covers patterns like
    /// `"[ -~]{0,8}"`; anything richer returns an `Err`.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        if chars.get(i) != Some(&'[') {
            return Err(Error(format!("unsupported pattern {pattern:?}")));
        }
        i += 1;
        let mut alphabet = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = chars[i];
            if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() && chars[i + 2] != ']' {
                let (lo, hi) = (c, chars[i + 2]);
                if lo > hi {
                    return Err(Error(format!("bad range {lo}-{hi}")));
                }
                alphabet.extend(lo..=hi);
                i += 3;
            } else {
                alphabet.push(c);
                i += 1;
            }
        }
        if chars.get(i) != Some(&']') || alphabet.is_empty() {
            return Err(Error(format!("unterminated class in {pattern:?}")));
        }
        i += 1;
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let rest: String = chars[i + 1..].iter().collect();
            let Some(end) = rest.find('}') else {
                return Err(Error(format!("unterminated repetition in {pattern:?}")));
            };
            if i + 2 + end != chars.len() {
                return Err(Error(format!("trailing syntax in {pattern:?}")));
            }
            let body = &rest[..end];
            let (a, b) = match body.split_once(',') {
                Some((a, b)) => (a, b),
                None => (body, body),
            };
            let lo: usize = a.trim().parse().map_err(|e| Error(format!("{e}")))?;
            let hi: usize = b.trim().parse().map_err(|e| Error(format!("{e}")))?;
            (lo, hi)
        } else if i == chars.len() {
            (1, 1)
        } else {
            return Err(Error(format!("unsupported pattern {pattern:?}")));
        };
        if lo > hi {
            return Err(Error(format!("bad repetition {lo},{hi}")));
        }
        Ok(RegexStrategy { alphabet, lo, hi })
    }

    /// See [`string_regex`].
    #[derive(Clone, Debug)]
    pub struct RegexStrategy {
        alphabet: Vec<char>,
        lo: usize,
        hi: usize,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let span = (self.hi - self.lo + 1) as u64;
            let n = self.lo + (rng.next_u64() % span) as usize;
            (0..n)
                .map(|_| self.alphabet[(rng.next_u64() % self.alphabet.len() as u64) as usize])
                .collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$attr:meta])* fn $name:ident (
         $($arg:ident in $strat:expr),+ $(,)?
     ) $body:block )*
    ) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!("property failed at case {}/{}: {}", case + 1, config.cases, e);
                }
            }
        }
    )*};
}

/// `assert!` that fails the *case* (with context) instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (0u32..7).generate(&mut rng);
            assert!(v < 7);
            let (a, b) = ((1usize..=3), (0.5f64..2.0)).generate(&mut rng);
            assert!((1..=3).contains(&a));
            assert!((0.5..2.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic("sizes");
        for _ in 0..500 {
            let v = crate::collection::vec(0u8..3, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn string_regex_supports_class_with_repetition() {
        let s = crate::string::string_regex("[ -~]{0,8}").expect("pattern");
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 8);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)));
        }
        assert!(crate::string::string_regex("a+").is_err());
    }

    #[test]
    fn flat_map_chains_strategies() {
        let mut rng = TestRng::deterministic("flat");
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n..n + 1));
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u32..100, v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.iter().copied().filter(|&x| x < 4).count());
            if v.is_empty() { return Ok(()); }
            prop_assert_ne!(v.len(), 0);
        }
    }
}
