//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace-local crate provides the (small) subset of the `rand 0.8`
//! API that the dbmine crates actually use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — statistically solid for test-data
//! generation and fully deterministic for a given seed. Note that the
//! *stream* differs from the real `StdRng` (ChaCha12), so synthetic data
//! sets differ in content (but not in distributional shape) from those a
//! registry build would produce.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly "from the whole type" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with uniform sampling over half-open / closed ranges. The
/// single blanket impl of [`SampleRange`] over this trait is what lets
/// integer-literal inference flow through `gen_range(0..6)` like with
/// the real rand crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range on empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _: bool) -> Self {
        lo + (hi - lo) * rng.next_f64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// The user-facing random-value interface (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// A value sampled uniformly from the whole type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value sampled uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0,1]");
        self.next_f64() < p
    }
}
impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` when empty).
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }

    // Re-check the blanket `Rng` impl stays in scope for doc users.
    const _: fn(&mut super::rngs::StdRng) -> bool = |r| Rng::gen_bool(r, 0.5);
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=5);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!(
            (sum / 10_000.0 - 0.5).abs() < 0.02,
            "mean {}",
            sum / 10_000.0
        );
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03, "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
