//! Offline stand-in for the `fxhash` / `rustc-hash` crates.
//!
//! The build environment has no access to a crate registry, so this
//! workspace-local crate provides the Firefox/rustc "Fx" hash: a
//! non-cryptographic multiplicative hash that is 5–10× cheaper than the
//! std `HashMap` default (SipHash-1-3) on small integer keys. The FD
//! lattice maps are keyed by `u64` attribute-set bitmasks, exactly the
//! workload where SipHash's per-key setup dominates profiles.
//!
//! Not DoS-resistant — only use for maps whose keys are not
//! attacker-controlled (every workspace call site hashes internal ids).

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// The zero-state `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Multiplier from the golden-ratio family (the rustc constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox hasher: `state = (rotl(state, 5) ^ word) * SEED`
/// per machine word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (head, tail) = rest.split_at(8);
            self.add_word(u64::from_le_bytes(head.try_into().unwrap()));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
        // Mix in the length so zero-padded tails of different lengths
        // ("a" vs "a\0") stay distinct.
        self.add_word(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(12345), hash(12345));
        assert_ne!(hash(12345), hash(12346));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));

        let s: FxHashSet<u64> = (0..1000).collect();
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&999));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let hash = |b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(b);
            h.finish()
        };
        assert_eq!(hash(b"abcdefgh_tail"), hash(b"abcdefgh_tail"));
        assert_ne!(hash(b"abcdefgh_tail"), hash(b"abcdefgh_tail!"));
        // Distinct lengths of the same prefix must differ (zero padding
        // alone would collide "a" with "a\0").
        assert_ne!(hash(b"a"), hash(b"a\0"));
    }

    #[test]
    fn low_bit_diffusion_on_small_keys() {
        // HashMap uses the low bits of the hash for bucket selection;
        // sequential keys must not collapse into few buckets.
        let buckets: FxHashSet<u64> = (0u64..64)
            .map(|v| {
                let mut h = FxHasher::default();
                h.write_u64(v);
                h.finish() & 0x3f
            })
            .collect();
        assert!(
            buckets.len() >= 24,
            "only {} distinct buckets",
            buckets.len()
        );
    }
}
