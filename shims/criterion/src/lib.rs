//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace-local crate provides a minimal wall-clock benchmarking
//! harness with criterion's API shape: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `black_box`, `BenchmarkId` and
//! `Throughput`.
//!
//! Each benchmark runs `sample_size` samples; every sample times a batch
//! of iterations sized so one sample takes ≳5 ms. The harness reports
//! min / median / mean per-iteration times on stdout. It understands
//! `--test` (smoke mode: one iteration per benchmark, used by
//! `cargo test`) and treats any other CLI argument as a substring filter
//! on benchmark ids, like real criterion.

use std::time::{Duration, Instant};

/// An opaque identity function that defeats constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported as elements/second).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// The top-level harness state.
#[derive(Clone, Debug)]
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, smoke }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.skipped(&full) {
            return self;
        }
        let mut b = Bencher::new(self.sample_size, self.criterion.smoke);
        f(&mut b, input);
        b.report(&full, self.throughput);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        if self.skipped(&full) {
            return self;
        }
        let mut b = Bencher::new(self.sample_size, self.criterion.smoke);
        f(&mut b);
        b.report(&full, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn skipped(&self, full_id: &str) -> bool {
        match &self.criterion.filter {
            Some(f) => !full_id.contains(f.as_str()),
            None => false,
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    smoke: bool,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize, smoke: bool) -> Self {
        Bencher {
            sample_size,
            smoke,
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Measures `f`, storing per-sample timings for the report.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.samples = vec![Duration::from_nanos(0)];
            return;
        }
        // Calibrate: how many iterations make one ≥5 ms sample?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        self.iters_per_sample = iters as u64;
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.smoke {
            println!("{id:<48} ok (smoke)");
            return;
        }
        if self.samples.is_empty() {
            println!("{id:<48} no measurement (Bencher::iter never called)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean: f64 = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let extra = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / median),
            None => String::new(),
        };
        println!(
            "{id:<48} min {}  median {}  mean {}{extra}",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>8.3} s ")
    } else if secs >= 1e-3 {
        format!("{:>8.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>8.3} µs", secs * 1e6)
    } else {
        format!("{:>8.1} ns", secs * 1e9)
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a ^ b.wrapping_mul(0x9E3779B97F4A7C15))
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("aib", 200).id, "aib/200");
        assert_eq!(BenchmarkId::from_parameter(1000).id, "1000");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(3, false);
        b.iter(|| work(100));
        assert_eq!(b.samples.len(), 3);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bencher::new(10, true);
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            filter: None,
            smoke: true,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(5)
            .throughput(Throughput::Elements(10))
            .bench_function("f", |b| b.iter(|| work(10)));
        g.bench_with_input(BenchmarkId::new("w", 1), &3u64, |b, &n| b.iter(|| work(n)));
        g.finish();
    }
}
